package graph

import (
	"os"
	"path/filepath"
	"testing"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func TestSnapshotRoundTrip(t *testing.T) {
	edges := [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {4, 5}}
	w, g := buildTestGraph(t, 3, edges)
	defer w.Close()
	dir := t.TempDir() + "/snap"
	if err := g.Save(dir); err != nil {
		t.Fatal(err)
	}

	g2, err := Load(w, dir, serialize.Uint64Codec(), serialize.Uint64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() ||
		g2.NumDirectedEdges() != g.NumDirectedEdges() ||
		g2.NumUndirectedEdges() != g.NumUndirectedEdges() ||
		g2.NumWedges() != g.NumWedges() ||
		g2.MaxDegree() != g.MaxDegree() ||
		g2.MaxOutDegree() != g.MaxOutDegree() {
		t.Errorf("global figures differ: %+v vs %+v", g2, g)
	}

	// Shard contents identical.
	w.Parallel(func(r *ygm.Rank) {
		a, b := g.LocalVertices(r), g2.LocalVertices(r)
		if len(a) != len(b) {
			t.Errorf("rank %d: %d vs %d vertices", r.ID(), len(a), len(b))
			return
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Deg != b[i].Deg || a[i].Meta != b[i].Meta {
				t.Errorf("rank %d vertex %d differs", r.ID(), i)
			}
			if len(a[i].Adj) != len(b[i].Adj) {
				t.Errorf("rank %d vertex %d adjacency length differs", r.ID(), i)
				continue
			}
			for k := range a[i].Adj {
				if a[i].Adj[k] != b[i].Adj[k] {
					t.Errorf("rank %d vertex %d edge %d differs", r.ID(), i, k)
				}
			}
		}
		if _, err := g2.CheckInvariants(r); err != nil {
			t.Errorf("loaded graph invariants: %v", err)
		}
	})
}

func TestSnapshotStringMetadata(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	b := NewBuilder(w, serialize.StringCodec(), serialize.StringCodec(), BuilderOptions[string]{})
	var g *DODGr[string, string]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			b.AddEdge(r, 1, 2, "edge-1-2")
			b.AddEdge(r, 2, 3, "edge-2-3")
			b.SetVertexMeta(r, 1, "site1.example")
			b.SetVertexMeta(r, 2, "site2.example")
			b.SetVertexMeta(r, 3, "site3.example")
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	dir := t.TempDir()
	if err := g.Save(dir); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(w, dir, serialize.StringCodec(), serialize.StringCodec())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	w.Parallel(func(r *ygm.Rank) {
		if v, ok := g2.Lookup(r, 2); ok {
			if v.Meta != "site2.example" {
				t.Errorf("vertex meta = %q", v.Meta)
			}
			found = true
		}
		r.Barrier()
	})
	if !found {
		t.Error("vertex 2 missing after load")
	}
}

func TestSnapshotErrors(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	// Missing directory.
	if _, err := Load(w, t.TempDir()+"/nope", serialize.Uint64Codec(), serialize.Uint64Codec()); err == nil {
		t.Error("expected error for missing snapshot")
	}
	// Wrong magic.
	dir := t.TempDir()
	var e serialize.Encoder
	e.PutString("WRONG")
	if err := os.WriteFile(filepath.Join(dir, "meta.tpg"), e.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(w, dir, serialize.Uint64Codec(), serialize.Uint64Codec()); err == nil {
		t.Error("expected error for bad magic")
	}
	// World-size mismatch.
	edges := [][2]uint64{{0, 1}, {1, 2}}
	w3, g := buildTestGraph(t, 3, edges)
	defer w3.Close()
	dir2 := t.TempDir()
	if err := g.Save(dir2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(w, dir2, serialize.Uint64Codec(), serialize.Uint64Codec()); err == nil {
		t.Error("expected error for rank-count mismatch")
	}
	// Truncated shard.
	shard := shardPath(dir2, 0)
	raw, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > 2 {
		if err := os.WriteFile(shard, raw[:len(raw)-2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(w3, dir2, serialize.Uint64Codec(), serialize.Uint64Codec()); err == nil {
			t.Error("expected error for truncated shard")
		}
	}
}
