package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// testBatch builds a small deterministic edge batch keyed by i.
func testBatch(i int) []graph.Edge[uint64] {
	base := uint64(i * 100)
	return []graph.Edge[uint64]{
		{U: base + 1, V: base + 2, Meta: base + 10},
		{U: base + 2, V: base + 3, Meta: base + 20},
		{U: base + 7, V: base + 1, Meta: base + 30},
	}
}

// appendN writes n alternating ingest/advance records and returns them.
func appendN(t *testing.T, l *Log[uint64], n int) []Record[uint64] {
	t.Helper()
	var recs []Record[uint64]
	for i := 0; i < n; i++ {
		var (
			seq uint64
			err error
			rec Record[uint64]
		)
		if i%4 == 3 {
			cutoff := uint64(i * 50)
			seq, err = l.AppendAdvance(cutoff)
			rec = Record[uint64]{Seq: seq, Kind: KindAdvance, Cutoff: cutoff}
		} else {
			batch := testBatch(i)
			seq, err = l.AppendIngest(batch)
			rec = Record[uint64]{Seq: seq, Kind: KindIngest, Batch: batch}
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log[uint64], []Record[uint64]) {
	t.Helper()
	l, recs, err := Open(dir, serialize.Uint64Codec(), opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs
}

func segments(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.tpw"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := appendN(t, l, 10)
	if l.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := mustOpen(t, dir, Options{})
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Appends continue the sequence unbroken.
	seq, err := l2.AppendAdvance(999)
	if err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	st := l2.Stats()
	if st.Records != 11 || st.LastSeq != 11 {
		t.Fatalf("stats after reopen: %+v", st)
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	want := appendN(t, l, 30)
	if n := len(segments(t, dir)); n < 3 {
		t.Fatalf("expected rotation, got %d segments", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := mustOpen(t, dir, Options{SegmentBytes: 128})
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-segment replay lost records: got %d, want %d", len(got), len(want))
	}
}

// TestKillAtAnyByte truncates the log at every possible byte boundary of
// the final segment and verifies recovery always yields an exact prefix of
// the appended records — never a panic, never a gap, never a corrupted
// record surfaced as data — and that the log accepts appends afterwards.
func TestKillAtAnyByte(t *testing.T) {
	ref := t.TempDir()
	l, _ := mustOpen(t, ref, Options{})
	want := appendN(t, l, 6)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segments(t, ref)
	if len(segs) != 1 {
		t.Fatalf("want single segment, got %d", len(segs))
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(whole); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, filepath.Base(segs[0]))
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got, err := Open(dir, serialize.Uint64Codec(), Options{})
		if err != nil {
			t.Fatalf("cut=%d: recovery error: %v", cut, err)
		}
		if len(got) > len(want) {
			t.Fatalf("cut=%d: recovered %d > appended %d", cut, len(got), len(want))
		}
		if len(got) > 0 && !reflect.DeepEqual(got, want[:len(got)]) {
			t.Fatalf("cut=%d: recovered records are not a prefix", cut)
		}
		if cut == len(whole) && len(got) != len(want) {
			t.Fatalf("uncut log lost records: %d of %d", len(got), len(want))
		}
		// The recovered log must keep working and number records densely.
		seq, err := l2.AppendAdvance(1)
		if err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if wantSeq := uint64(len(got)) + 1; seq != wantSeq {
			t.Fatalf("cut=%d: post-recovery seq %d, want %d", cut, seq, wantSeq)
		}
		l2.Close()
	}
}

func TestFlippedCRCByteInFinalSegmentRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	want := appendN(t, l, 5)
	l.Close()
	path := segments(t, dir)[0]
	data, _ := os.ReadFile(path)
	// Flip a byte in the middle of the file (inside some record's bytes).
	mid := segHeaderLen + (len(data)-segHeaderLen)/2
	data[mid] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(got) >= len(want) {
		t.Fatalf("flipped byte not detected: recovered %d of %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatalf("recovered records are not a clean prefix")
	}
	if l2.Stats().TruncatedBytes == 0 {
		t.Fatalf("expected truncated bytes to be accounted")
	}
}

func TestFlippedByteInEarlierSegmentIsTypedError(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	appendN(t, l, 30)
	l.Close()
	segs := segments(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	data, _ := os.ReadFile(segs[0])
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, serialize.Uint64Codec(), Options{SegmentBytes: 128})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damage before acknowledged records must be ErrCorrupt, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Segment == "" {
		t.Fatalf("want *CorruptError with location, got %#v", err)
	}
}

func TestZeroLengthFinalSegment(t *testing.T) {
	// Case 1: the only file is zero-length — a fresh-looking log.
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("zero-length log replayed %d records", len(recs))
	}
	if seq, err := l.AppendAdvance(7); err != nil || seq != 1 {
		t.Fatalf("append: seq=%d err=%v", seq, err)
	}
	l.Close()

	// Case 2: a zero-length segment after real ones — crash during
	// rotation; the earlier records survive.
	dir2 := t.TempDir()
	l2, _ := mustOpen(t, dir2, Options{})
	want := appendN(t, l2, 4)
	l2.Close()
	if err := os.WriteFile(segPath(dir2, 5), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l3, got := mustOpen(t, dir2, Options{})
	defer l3.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records lost around empty rotated segment")
	}
	if seq, err := l3.AppendAdvance(9); err != nil || seq != 5 {
		t.Fatalf("append after empty-segment recovery: seq=%d err=%v", seq, err)
	}

	// Case 3: a zero-length segment *before* acknowledged records is
	// damage, not a crash artifact.
	dir3 := t.TempDir()
	l4, _ := mustOpen(t, dir3, Options{})
	appendN(t, l4, 2)
	l4.Close()
	if err := os.WriteFile(segPath(dir3, 0), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir3, serialize.Uint64Codec(), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty non-final segment must be ErrCorrupt, got %v", err)
	}
}

func TestDuplicateSegmentIsTypedError(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	appendN(t, l, 30)
	l.Close()
	segs := segments(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// A stray copy of an old segment under a name that sorts after the
	// head: its base disagrees with the established sequence.
	data, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segPath(dir, 1<<40), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, serialize.Uint64Codec(), Options{SegmentBytes: 128})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicated segment must be ErrCorrupt, got %v", err)
	}
}

func TestTruncateCheckpointsAndKeepsSequence(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	appendN(t, l, 20)
	last := l.LastSeq()
	if err := l.Truncate(last); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	st := l.Stats()
	if st.Records != 0 || st.Segments != 1 || st.CheckpointSeq != last {
		t.Fatalf("after full checkpoint: %+v", st)
	}
	// Sequence numbering survives the checkpoint and a restart.
	if seq, err := l.AppendAdvance(1); err != nil || seq != last+1 {
		t.Fatalf("append after checkpoint: seq=%d err=%v (want %d)", seq, err, last+1)
	}
	l.Close()
	l2, recs := mustOpen(t, dir, Options{SegmentBytes: 128})
	defer l2.Close()
	if len(recs) != 1 || recs[0].Seq != last+1 {
		t.Fatalf("replay after checkpoint: %+v", recs)
	}

	// Partial checkpoints only drop wholly covered segments and never the
	// uncovered tail records.
	dir2 := t.TempDir()
	l3, _ := mustOpen(t, dir2, Options{SegmentBytes: 128})
	want := appendN(t, l3, 30)
	if err := l3.Truncate(10); err != nil {
		t.Fatal(err)
	}
	l3.Close()
	_, got := mustOpen(t, dir2, Options{SegmentBytes: 128})
	if len(got) == 0 || got[len(got)-1].Seq != 30 {
		t.Fatalf("tail records lost by partial checkpoint")
	}
	// Everything replayed must be a suffix of what was written.
	off := int(got[0].Seq - 1)
	if !reflect.DeepEqual(got, want[off:]) {
		t.Fatalf("partial checkpoint replay mismatch at seq %d", got[0].Seq)
	}
	if got[0].Seq > 11 {
		t.Fatalf("checkpoint at 10 dropped uncovered record %d", got[0].Seq)
	}
}

func TestBaseSeqSeedsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpen(t, dir, Options{BaseSeq: 101})
	defer l.Close()
	if len(recs) != 0 {
		t.Fatal("fresh log replayed records")
	}
	if seq, err := l.AppendAdvance(3); err != nil || seq != 101 {
		t.Fatalf("BaseSeq ignored: seq=%d err=%v", seq, err)
	}
}

func TestSyncNeverStillRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	want := appendN(t, l, 8)
	if err := l.Sync(); err != nil { // explicit durability point
		t.Fatal(err)
	}
	l.Close()
	l2, got := mustOpen(t, dir, Options{Sync: SyncNever})
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SyncNever replay mismatch")
	}
}
