// Batch codec: the wire form of one edge batch, shared between the WAL's
// ingest records and the dist layer's mutation broadcast (kIngest frames
// carry exactly this encoding as an opaque byte slice). Factoring it out
// of AppendIngest/decodeRecord keeps the two layers byte-compatible: what
// the driver logs is what every worker decodes and applies.
package wal

import (
	"fmt"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// EncodeBatch serializes an edge batch: uvarint count, then per edge
// uvarint U, uvarint V, and the metadata under em. The result round-trips
// through DecodeBatch on any process holding the same codec.
func EncodeBatch[EM any](em serialize.Codec[EM], batch []graph.Edge[EM]) []byte {
	var enc serialize.Encoder
	enc.PutUvarint(uint64(len(batch)))
	for i := range batch {
		enc.PutUvarint(batch[i].U)
		enc.PutUvarint(batch[i].V)
		em.Encode(&enc, batch[i].Meta)
	}
	return enc.Bytes()
}

// DecodeBatch parses an EncodeBatch payload. Damage (truncation, trailing
// bytes, adversarial counts) returns an error, never a panic — the dist
// layer feeds this bytes that crossed a network.
func DecodeBatch[EM any](em serialize.Codec[EM], data []byte) ([]graph.Edge[EM], error) {
	d := serialize.NewDecoder(data)
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("wal: batch header: %w", d.Err())
	}
	// Adversarial counts never pre-allocate past the payload; the uint64
	// comparison also catches counts that would wrap a plain int.
	capHint := d.Remaining()
	if n < uint64(capHint) {
		capHint = int(n)
	}
	batch := make([]graph.Edge[EM], 0, capHint)
	for i := uint64(0); i < n; i++ {
		var e graph.Edge[EM]
		e.U = d.Uvarint()
		e.V = d.Uvarint()
		e.Meta = em.Decode(d)
		if d.Err() != nil {
			return nil, fmt.Errorf("wal: batch edge %d of %d: %w", i, n, d.Err())
		}
		batch = append(batch, e)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after batch", d.Remaining())
	}
	return batch, nil
}
