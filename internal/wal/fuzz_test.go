package wal

import (
	"slices"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// FuzzDecodeBatch feeds arbitrary bytes through the batch codec the dist
// layer applies to kIngest payloads that crossed a network. Damage must
// return an error — never panic, never allocate past the payload — and
// any batch that does decode must survive a re-encode/re-decode cycle
// unchanged. (Byte-for-byte canonicality would be too strong: varints
// admit non-minimal encodings, which EncodeBatch never emits but the
// decoder tolerates.)
func FuzzDecodeBatch(f *testing.F) {
	em := serialize.Uint64Codec()
	f.Add(EncodeBatch(em, nil))
	f.Add(EncodeBatch(em, []graph.Edge[uint64]{{U: 1, V: 2, Meta: 7}}))
	f.Add(EncodeBatch(em, []graph.Edge[uint64]{
		{U: 300, V: 4, Meta: 1 << 40}, {U: 4, V: 300, Meta: 0},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge count, no edges
	f.Add([]byte{2, 1, 2, 3})                                                 // truncated second edge

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := DecodeBatch(em, data)
		if err != nil {
			return
		}
		again, err := DecodeBatch(em, EncodeBatch(em, batch))
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if !slices.Equal(batch, again) {
			t.Fatalf("round trip changed the batch:\n  first  %v\n  second %v", batch, again)
		}
	})
}
