// Package wal is the durability layer under stream-backed graphs: a
// write-ahead log of every Ingest/Advance batch, replayable after a crash.
// The streaming tier (DESIGN.md §9) makes this cheap — batches are the
// stream's own mutation unit and re-applying them is deterministic — so
// recovery is nothing more than re-Ingest in log order.
//
// Layout: a directory of segment files named wal-<base seq, hex>.tpw. Each
// segment starts with a fixed header (magic + the sequence number of its
// first record) followed by length-prefixed, CRC-framed records:
//
//	[uint32 payload length][uint32 CRC32-C of payload][payload]
//
// The payload is a serialize-encoded record: kind byte, sequence number,
// then the body (the edge batch for ingests via the graph's edge-metadata
// codec, the cutoff watermark for advances). Sequence numbers increase by
// exactly one across segment boundaries, which is what lets recovery
// detect duplicated or overlapping segment files.
//
// Recovery (Open) replays every complete record. A torn tail in the *last*
// segment — a crash mid-append — is truncated away and appending resumes
// at the last good record; any other damage (a bad frame in a non-final
// segment, a CRC-valid record that fails to decode, a sequence
// discontinuity) returns a *CorruptError wrapping ErrCorrupt, because
// records after the damage were acknowledged and silently dropping them
// would break the write-ahead contract.
//
// Checkpointing: once the stream's state is snapshotted elsewhere (the
// TPDG2 graph snapshot), Truncate(seq) seals the live segment and deletes
// every segment wholly covered by the checkpoint, bounding log growth.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// ErrCorrupt is the base class of unrecoverable log damage; every
// *CorruptError wraps it (errors.Is(err, ErrCorrupt)).
var ErrCorrupt = errors.New("wal: corrupt log")

// CorruptError describes unrecoverable damage: where it was found and why
// the log cannot be trusted past it.
type CorruptError struct {
	Segment string // segment file path
	Offset  int64  // byte offset of the damage within the segment
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at %s:%d", e.Reason, e.Segment, e.Offset)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch survives
	// any crash. The default, and the policy the recovery guarantees are
	// stated under.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS; a crash may lose the most
	// recent acknowledged batches (they become a truncated tail). Callers
	// can still force durability points with Sync.
	SyncNever
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindIngest records one Ingest batch of timestamped edge insertions.
	KindIngest Kind = 1
	// KindAdvance records one Advance of the expiry watermark.
	KindAdvance Kind = 2
)

// Record is one replayed log entry.
type Record[EM any] struct {
	Seq    uint64
	Kind   Kind
	Batch  []graph.Edge[EM] // KindIngest
	Cutoff uint64           // KindAdvance
}

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SegmentBytes rotates to a fresh segment once the live one exceeds
	// this size; 0 means the 4 MiB default.
	SegmentBytes int64
	// BaseSeq is the sequence number the first record receives when the
	// directory holds no records yet (a fresh log, or one whose segments
	// were all truncated away before a crash); existing records always
	// win. Engines resuming from a checkpoint manifest pass
	// checkpointSeq+1 so sequence numbers stay aligned with epochs.
	BaseSeq uint64
}

// Stats counts the log's current extent and lifetime activity.
type Stats struct {
	Segments       int    `json:"segments"`        // live segment files
	Records        uint64 `json:"records"`         // records in live segments (replayed + appended)
	Bytes          int64  `json:"bytes"`           // bytes across live segments
	LastSeq        uint64 `json:"last_seq"`        // sequence number of the newest record
	TruncatedBytes int64  `json:"truncated_bytes"` // torn-tail bytes dropped at recovery
	Checkpoints    uint64 `json:"checkpoints"`     // Truncate calls
	CheckpointSeq  uint64 `json:"checkpoint_seq"`  // newest sequence covered by a checkpoint
	Syncs          uint64 `json:"syncs"`           // fsyncs issued
}

const (
	segMagic     = "TPWAL1"
	segHeaderLen = len(segMagic) + 8 // magic + LE64 base sequence
	frameLen     = 8                 // LE32 length + LE32 CRC32-C
	// maxRecordBytes bounds one record's payload; frames claiming more are
	// treated as damage rather than allocated.
	maxRecordBytes = 1 << 30
	defaultSegment = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is one live on-disk segment file.
type segment struct {
	path string
	base uint64 // sequence number of its first record
	recs uint64 // records it holds
	size int64
}

// Log is an open write-ahead log. Not safe for concurrent use; the engine
// appends only from its scheduler goroutine.
type Log[EM any] struct {
	dir  string
	em   serialize.Codec[EM]
	opts Options

	segs []segment // all live segments, oldest first; last is the write head
	f    *os.File  // write head, positioned at end
	seq  uint64    // newest record's sequence number

	stats  Stats
	enc    serialize.Encoder
	closed bool
}

func segPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.tpw", base))
}

// Open opens (creating if needed) the log in dir and replays every
// complete record, returning them in sequence order. A torn tail in the
// final segment is truncated away; any other damage returns a
// *CorruptError and no Log. The returned Log appends after the last
// replayed record.
func Open[EM any](dir string, em serialize.Codec[EM], opts Options) (*Log[EM], []Record[EM], error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegment
	}
	if opts.BaseSeq == 0 {
		opts.BaseSeq = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log[EM]{dir: dir, em: em, opts: opts}

	names, err := filepath.Glob(filepath.Join(dir, "wal-*.tpw"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names) // fixed-width hex base: lexicographic == numeric
	// A final segment shorter than its header is a crash between file
	// creation and the header write: nothing in it was ever acknowledged,
	// so drop it and recreate the head below. The surviving bytes must
	// still be a prefix of a valid header — anything else is not a torn
	// write but damage.
	if n := len(names); n > 0 {
		data, err := os.ReadFile(names[n-1])
		if err != nil {
			return nil, nil, err
		}
		if len(data) < segHeaderLen {
			m := len(data)
			if m > len(segMagic) {
				m = len(segMagic)
			}
			if string(data[:m]) != segMagic[:m] {
				return nil, nil, &CorruptError{Segment: names[n-1], Reason: "bad segment header"}
			}
			if err := os.Remove(names[n-1]); err != nil {
				return nil, nil, err
			}
			names = names[:n-1]
		}
	}
	var recs []Record[EM]
	expected := uint64(0) // base the next segment must start at; 0 = first
	for i, path := range names {
		final := i == len(names)-1
		segRecs, err := l.replaySegment(path, final, expected, &recs)
		if err != nil {
			return nil, nil, err
		}
		l.segs = append(l.segs, segRecs)
		expected = l.seq + 1
	}
	if len(l.segs) == 0 {
		l.seq = opts.BaseSeq - 1
		if err := l.startSegment(opts.BaseSeq); err != nil {
			return nil, nil, err
		}
	} else {
		head := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(head.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, err
		}
		if _, err := f.Seek(head.size, 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f = f
	}
	l.stats.Segments = len(l.segs)
	return l, recs, nil
}

// replaySegment scans one segment file, appending its records to out.
// Damage in a final segment truncates the file to the last good record;
// damage anywhere else is a *CorruptError.
func (l *Log[EM]) replaySegment(path string, final bool, expected uint64, out *[]Record[EM]) (segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, err
	}
	corrupt := func(off int, reason string) error {
		return &CorruptError{Segment: path, Offset: int64(off), Reason: reason}
	}
	if len(data) == 0 {
		// Open already removed a zero-length *final* segment; an empty
		// earlier segment means a later segment holds records that were
		// acknowledged after it — damage, not a crash artifact.
		return segment{}, corrupt(0, "empty non-final segment")
	}
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return segment{}, corrupt(0, "bad segment header")
	}
	base := binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen])
	if expected != 0 && base != expected {
		return segment{}, corrupt(0, fmt.Sprintf("segment base %d, want %d (duplicated or missing segment)", base, expected))
	}
	seg := segment{path: path, base: base}
	seq := base - 1
	off := segHeaderLen
	for off < len(data) {
		torn := func(reason string) (segment, error) {
			if !final {
				return segment{}, corrupt(off, reason)
			}
			// Crash mid-append: drop the tail, resume after the last good
			// record. Nothing past a torn write was ever acknowledged
			// under SyncAlways.
			l.stats.TruncatedBytes += int64(len(data) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return segment{}, err
			}
			seg.size = int64(off)
			l.seq = seq
			return seg, nil
		}
		if off+frameLen > len(data) {
			return torn("truncated frame header")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes {
			return torn(fmt.Sprintf("implausible record length %d", n))
		}
		if off+frameLen+n > len(data) {
			return torn("truncated record payload")
		}
		payload := data[off+frameLen : off+frameLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return torn("CRC mismatch")
		}
		// A CRC-valid payload that fails to decode was fully written and
		// acknowledged — that is corruption (or a codec mismatch), not a
		// torn write, so it is never silently dropped.
		rec, err := l.decodeRecord(payload)
		if err != nil {
			return segment{}, corrupt(off, err.Error())
		}
		if rec.Seq != seq+1 {
			return segment{}, corrupt(off, fmt.Sprintf("sequence %d after %d (duplicated or reordered records)", rec.Seq, seq))
		}
		seq = rec.Seq
		seg.recs++
		l.stats.Records++
		*out = append(*out, rec)
		off += frameLen + n
	}
	seg.size = int64(off)
	l.seq = seq
	return seg, nil
}

func (l *Log[EM]) decodeRecord(payload []byte) (Record[EM], error) {
	d := serialize.NewDecoder(payload)
	var rec Record[EM]
	rec.Kind = Kind(d.Uint8())
	rec.Seq = d.Uvarint()
	switch rec.Kind {
	case KindIngest:
		n := d.Uvarint()
		if d.Err() != nil {
			return rec, d.Err()
		}
		capHint := int(n)
		if rem := d.Remaining(); capHint > rem {
			capHint = rem // adversarial counts never pre-allocate past the payload
		}
		rec.Batch = make([]graph.Edge[EM], 0, capHint)
		for i := uint64(0); i < n; i++ {
			var e graph.Edge[EM]
			e.U = d.Uvarint()
			e.V = d.Uvarint()
			e.Meta = l.em.Decode(d)
			if d.Err() != nil {
				return rec, d.Err()
			}
			rec.Batch = append(rec.Batch, e)
		}
	case KindAdvance:
		rec.Cutoff = d.Uvarint()
	default:
		return rec, fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	if d.Err() != nil {
		return rec, d.Err()
	}
	if d.Remaining() != 0 {
		return rec, fmt.Errorf("%d trailing bytes in record", d.Remaining())
	}
	return rec, nil
}

// startSegment creates and heads a fresh segment whose first record will
// carry sequence number base.
func (l *Log[EM]) startSegment(base uint64) error {
	path := segPath(l.dir, base)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.stats.Syncs++
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.segs = append(l.segs, segment{path: path, base: base, size: int64(segHeaderLen)})
	l.stats.Segments = len(l.segs)
	l.syncDir()
	return nil
}

// syncDir flushes the directory so segment creates/removes survive a
// crash; best-effort (some filesystems refuse directory fsync).
func (l *Log[EM]) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// AppendIngest logs one edge batch and returns its sequence number. Under
// SyncAlways the record is on stable storage when AppendIngest returns —
// the write-ahead point the engine applies the batch behind.
func (l *Log[EM]) AppendIngest(batch []graph.Edge[EM]) (uint64, error) {
	l.enc.Reset()
	l.enc.PutUint8(uint8(KindIngest))
	l.enc.PutUvarint(l.seq + 1)
	l.enc.PutUvarint(uint64(len(batch)))
	for i := range batch {
		l.enc.PutUvarint(batch[i].U)
		l.enc.PutUvarint(batch[i].V)
		l.em.Encode(&l.enc, batch[i].Meta)
	}
	return l.append(l.enc.Bytes())
}

// AppendAdvance logs one watermark advance and returns its sequence
// number.
func (l *Log[EM]) AppendAdvance(cutoff uint64) (uint64, error) {
	l.enc.Reset()
	l.enc.PutUint8(uint8(KindAdvance))
	l.enc.PutUvarint(l.seq + 1)
	l.enc.PutUvarint(cutoff)
	return l.append(l.enc.Bytes())
}

func (l *Log[EM]) append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	head := &l.segs[len(l.segs)-1]
	if head.size+int64(frameLen+len(payload)) > l.opts.SegmentBytes && head.recs > 0 {
		if err := l.rotate(); err != nil {
			return 0, err
		}
		head = &l.segs[len(l.segs)-1]
	}
	var frame [frameLen]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(frame[:]); err != nil {
		return 0, err
	}
	if _, err := l.f.Write(payload); err != nil {
		return 0, err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		l.stats.Syncs++
	}
	l.seq++
	head.size += int64(frameLen + len(payload))
	head.recs++
	l.stats.Records++
	return l.seq, nil
}

// rotate seals the live segment and heads a fresh one.
func (l *Log[EM]) rotate() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.stats.Syncs++
	return l.startSegment(l.seq + 1)
}

// Sync forces buffered appends to stable storage — the durability point
// under SyncNever.
func (l *Log[EM]) Sync() error {
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.stats.Syncs++
	return nil
}

// Truncate marks every record with sequence ≤ seq as checkpointed (their
// effects are captured in a snapshot elsewhere) and deletes the segments
// wholly covered by the checkpoint. The live segment is sealed first, so
// after a checkpoint at the current LastSeq the log keeps exactly one
// empty segment and sequence numbering continues unbroken.
func (l *Log[EM]) Truncate(seq uint64) error {
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if seq > l.seq {
		return fmt.Errorf("wal: checkpoint at %d beyond last record %d", seq, l.seq)
	}
	if head := &l.segs[len(l.segs)-1]; head.recs > 0 && seq >= l.seq {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	keep := l.segs[:0]
	for i := range l.segs {
		// A segment's records end where the next one's begin; the write
		// head is never deleted.
		last := i+1 < len(l.segs) && l.segs[i+1].base-1 <= seq
		if last {
			if err := os.Remove(l.segs[i].path); err != nil {
				return err
			}
			l.stats.Records -= l.segs[i].recs
			continue
		}
		keep = append(keep, l.segs[i])
	}
	l.segs = keep
	l.stats.Segments = len(l.segs)
	l.stats.Checkpoints++
	if seq > l.stats.CheckpointSeq {
		l.stats.CheckpointSeq = seq
	}
	l.syncDir()
	return nil
}

// LastSeq returns the sequence number of the newest record (BaseSeq-1 on
// an empty log).
func (l *Log[EM]) LastSeq() uint64 { return l.seq }

// Stats returns a snapshot of the log's counters.
func (l *Log[EM]) Stats() Stats {
	st := l.stats
	st.LastSeq = l.seq
	st.Bytes = 0
	for i := range l.segs {
		st.Bytes += l.segs[i].size
	}
	return st
}

// Close syncs and closes the log. Further appends fail.
func (l *Log[EM]) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
