package core

import (
	"tripoll/internal/container"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// Windowed variants of the stock surveys: the same callbacks as
// analytics.go restricted to plan-matching triangles, with the plan's
// predicates pushed into the communication phases rather than applied
// after the fact. Each is exactly equivalent to its unplanned counterpart
// followed by a Plan.MatchEdges post-filter (pushdown_test.go proves it),
// but moves strictly fewer messages and bytes whenever the plan prunes
// anything (-exp pushdown measures how many).

// WindowedCount counts plan-matching triangles — the δ-windowed /
// time-windowed / metadata-filtered analog of Count. Result.Triangles is
// the matching count.
func WindowedCount[VM, EM any](g *graph.DODGr[VM, EM], plan *Plan[EM], opts Options) (Result, error) {
	s, err := NewPlannedSurvey(g, opts, plan, nil)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// WindowedClosureTimes is ClosureTimes (Alg. 4, the §5.7 Reddit survey)
// restricted to plan-matching triangles. Edge metadata must be timestamps;
// build the plan from TemporalPlan so the δ/window constraints read them.
func WindowedClosureTimes[VM any](g *graph.DODGr[VM, uint64], plan *Plan[uint64], opts Options) (*stats.Joint2D, Result, error) {
	w := g.World()
	codec := serialize.PairCodec(serialize.Int64Codec(), serialize.Int64Codec())
	counter := container.NewCounter[TimePair](w, codec, container.CounterOptions{})
	s, err := NewPlannedSurvey(g, opts, plan, func(r *ygm.Rank, t *Triangle[VM, uint64]) {
		t1, t2, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
		open := int64(stats.CeilLog2(t2 - t1))
		close := int64(stats.CeilLog2(t3 - t1))
		counter.Inc(r, TimePair{First: open, Second: close})
	})
	if err != nil {
		return nil, Result{}, err
	}
	res := s.Run()
	joint := stats.NewJoint2D()
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			for k, c := range m {
				joint.Add(int(k.First), int(k.Second), c)
			}
		}
	})
	return joint, res, nil
}

// WindowedMaxEdgeLabelDistribution is MaxEdgeLabelDistribution (Alg. 3)
// restricted to plan-matching triangles: among matching triangles with
// pairwise distinct vertex labels, the distribution of the maximum edge
// label. The plan's predicates range over the edge labels themselves
// (WhereEdge), so e.g. a label-subset filter prunes communication too.
func WindowedMaxEdgeLabelDistribution[VM comparable](g *graph.DODGr[VM, uint64], plan *Plan[uint64], opts Options) (map[uint64]uint64, Result, error) {
	w := g.World()
	counter := container.NewCounter[uint64](w, serialize.Uint64Codec(), container.CounterOptions{})
	s, err := NewPlannedSurvey(g, opts, plan, func(r *ygm.Rank, t *Triangle[VM, uint64]) {
		if t.MetaP == t.MetaQ || t.MetaQ == t.MetaR || t.MetaP == t.MetaR {
			return
		}
		max := t.MetaPQ
		if t.MetaPR > max {
			max = t.MetaPR
		}
		if t.MetaQR > max {
			max = t.MetaQR
		}
		counter.Inc(r, max)
	})
	if err != nil {
		return nil, Result{}, err
	}
	res := s.Run()
	var gathered map[uint64]uint64
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			gathered = m
		}
	})
	return gathered, res, nil
}
