package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/stats"
)

// Windowed variants of the stock surveys: the same analyses as
// analytics.go restricted to plan-matching triangles, with the plan's
// predicates pushed into the communication phases rather than applied
// after the fact. Each is a thin wrapper over Run with a plan — exactly
// equivalent to its unplanned counterpart followed by a Plan.MatchEdges
// post-filter (pushdown_test.go proves it), but moving strictly fewer
// messages and bytes whenever the plan prunes anything (-exp pushdown
// measures how many).

// WindowedCount counts plan-matching triangles — the δ-windowed /
// time-windowed / metadata-filtered analog of Count. Result.Triangles is
// the matching count.
//
// Deprecated: equivalent to Run(g, opts, plan); kept as the conventional
// name for the bare windowed count.
func WindowedCount[VM, EM any](g *graph.DODGr[VM, EM], plan *Plan[EM], opts Options) (Result, error) {
	return Run[VM, EM](g, opts, plan)
}

// WindowedClosureTimes is ClosureTimes (Alg. 4, the §5.7 Reddit survey)
// restricted to plan-matching triangles. Edge metadata must be timestamps;
// build the plan from TemporalPlan so the δ/window constraints read them.
//
// Deprecated: use Run with ClosureTimeAnalysis and a plan, which fuses
// with other analyses in one traversal.
func WindowedClosureTimes[VM any](g *graph.DODGr[VM, uint64], plan *Plan[uint64], opts Options) (*stats.Joint2D, Result, error) {
	var joint *stats.Joint2D
	res, err := Run(g, opts, plan, ClosureTimeAnalysis[VM]().Bind(&joint))
	if err != nil {
		return nil, Result{}, err
	}
	return joint, res, nil
}

// WindowedMaxEdgeLabelDistribution is MaxEdgeLabelDistribution (Alg. 3)
// restricted to plan-matching triangles: among matching triangles with
// pairwise distinct vertex labels, the distribution of the maximum edge
// label. The plan's predicates range over the edge labels themselves
// (WhereEdge), so e.g. a label-subset filter prunes communication too.
//
// Deprecated: use Run with MaxEdgeLabelAnalysis and a plan, which fuses
// with other analyses in one traversal.
func WindowedMaxEdgeLabelDistribution[VM comparable](g *graph.DODGr[VM, uint64], plan *Plan[uint64], opts Options) (map[uint64]uint64, Result, error) {
	var dist map[uint64]uint64
	res, err := Run(g, opts, plan, MaxEdgeLabelAnalysis[VM](true).Bind(&dist))
	if err != nil {
		return nil, Result{}, err
	}
	return dist, res, nil
}
