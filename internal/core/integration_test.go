package core

import (
	"fmt"
	"testing"

	"tripoll/internal/baseline"
	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/rmat"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// TestIntegrationMatrix is the full-pipeline cross-product check:
// generator × rank count × algorithm × world configuration, all validated
// against the serial ground truth. This is the test that would catch any
// interaction bug between the builder, the runtime options and the survey.
func TestIntegrationMatrix(t *testing.T) {
	generators := []struct {
		name  string
		edges [][2]uint64
	}{
		{"er", gen.ErdosRenyi(60, 500, 1)},
		{"ba", gen.BarabasiAlbert(300, 5, 2)},
		{"ws", gen.WattsStrogatz(200, 3, 0.1, 3)},
		{"k12", gen.Complete(12)},
		{"rmat", rmatEdges(t, 8)},
	}
	worlds := []struct {
		name string
		opts ygm.Options
	}{
		{"default", ygm.Options{}},
		{"tinybuf", ygm.Options{BufferBytes: 128}},
		{"grouped", ygm.Options{GroupSize: 2}},
	}
	for _, g := range generators {
		want := baseline.SerialCount(g.edges)
		for _, wc := range worlds {
			for _, nranks := range []int{1, 4} {
				for _, mode := range []Mode{PushOnly, PushPull} {
					name := fmt.Sprintf("%s/%s/r%d/%v", g.name, wc.name, nranks, mode)
					t.Run(name, func(t *testing.T) {
						w := ygm.MustWorld(nranks, wc.opts)
						defer w.Close()
						b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
						var dg *graph.DODGr[serialize.Unit, serialize.Unit]
						w.Parallel(func(r *ygm.Rank) {
							for i := r.ID(); i < len(g.edges); i += r.Size() {
								b.AddEdge(r, g.edges[i][0], g.edges[i][1], serialize.Unit{})
							}
							gg := b.Build(r)
							if r.ID() == 0 {
								dg = gg
							}
						})
						res := Count(dg, Options{Mode: mode})
						if res.Triangles != want {
							t.Errorf("count = %d, want %d", res.Triangles, want)
						}
					})
				}
			}
		}
	}
}

func rmatEdges(t *testing.T, scale int) [][2]uint64 {
	t.Helper()
	p := rmat.Params{Scale: scale, Seed: 77, Scramble: true}
	out := make([][2]uint64, 0, p.NumEdges())
	p.Generate(0, p.NumEdges(), func(u, v uint64) { out = append(out, [2]uint64{u, v}) })
	return out
}

// TestIntegrationSurveyPipelines chains multiple different surveys over
// the same world and graph, confirming handler registries and counter
// state stay isolated across survey instances.
func TestIntegrationSurveyPipelines(t *testing.T) {
	edges := gen.BarabasiAlbert(400, 6, 9)
	w, g := buildMeta(t, 4, edges, ygm.Options{})
	defer w.Close()

	count1 := Count(g, Options{Mode: PushPull})
	verts, _ := LocalVertexCounts(g, Options{Mode: PushOnly})
	edgesC, _ := LocalEdgeCounts(g, Options{Mode: PushPull})
	cs, _ := ClusteringCoefficients(g, Options{})
	count2 := Count(g, Options{Mode: PushOnly})

	if count1.Triangles != count2.Triangles {
		t.Errorf("counts drifted across surveys: %d vs %d", count1.Triangles, count2.Triangles)
	}
	var vsum, esum uint64
	for _, c := range verts {
		vsum += c
	}
	for _, c := range edgesC {
		esum += c
	}
	if vsum != 3*count1.Triangles || esum != 3*count1.Triangles {
		t.Errorf("participation sums: vertices %d, edges %d, want %d", vsum, esum, 3*count1.Triangles)
	}
	if cs.Triangles != count1.Triangles {
		t.Errorf("clustering triangles = %d", cs.Triangles)
	}
}
