package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// Stream sinks. A StreamSink is the structural counterpart of a
// StreamAttached analysis: where an analysis folds each triangle into an
// accumulator and forgets it, a sink *keeps* a maintained data structure
// (an index) continuously consistent with the stream's live window. Sinks
// see three kinds of events:
//
//   - edge events: the seed graph's edges (SinkSeedEdge, once per
//     undirected edge, from inside the seed parallel region) and every
//     premerged Ingest batch (SinkBatch, outside parallel regions — the
//     premerged batch is deterministic and identical on every process of a
//     broadcast world, so no exchange is needed);
//   - triangle events: every enumerated triangle (SinkTriangle), from the
//     seed traversal, the delta traversals and epoch rebuilds, with the
//     batch's sign. Triangles are identified on exactly one rank of one
//     process, so rank-local recordings must be published collectively —
//     that is SinkCommit's job;
//   - watermark events: SinkExpire(cutoff) mirrors the shard tombstone
//     pass — everything timestamped below the cutoff left the window —
//     and SinkReset mirrors an epoch rebuild's accumulator reset: derived
//     triangle state is dropped and repopulated by the rebuild's full
//     traversal (edge state is maintained structurally and survives).
//
// SinkCommit runs once per collective stream operation (open, Ingest,
// Advance), outside parallel regions, in the same order on every process.
// It is where a sink exchanges rank-local event buffers (typically via
// ygm.AllGather inside its own w.Parallel region) and applies the merged
// update deterministically — after it returns, every process holds an
// identical index. A sink that buffers nothing still participates: the
// collective must run in lockstep on every process of a distributed world.
//
// Unlike StreamAttached, this interface is exported: maintained index
// structures live outside this package (see internal/truss).
type StreamSink[VM, EM any] interface {
	// SinkName identifies the sink in diagnostics.
	SinkName() string
	// SinkOpen announces the world size before any event is delivered.
	SinkOpen(nranks int)
	// SinkSeedEdge records one seed edge {u, v}. Called inside the seed
	// parallel region on the rank owning the forward half; exactly one
	// call per undirected seed edge, world-wide.
	SinkSeedEdge(r *ygm.Rank, u, v uint64, em EM)
	// SinkTriangle records one enumerated triangle with the batch's sign
	// (+1 for creations and full traversals, -1 for expiry deltas). Called
	// from traversal callbacks and handlers; the Triangle points into
	// reused scratch and must be copied if retained.
	SinkTriangle(r *ygm.Rank, t *Triangle[VM, EM], sign int)
	// SinkBatch applies one premerged Ingest batch (self-loops dropped,
	// in-batch duplicates merged, endpoints ordered lo < hi). Outside
	// parallel regions; identical on every process.
	SinkBatch(batch []graph.Edge[EM])
	// SinkExpire drops sink state timestamped below the cutoff watermark,
	// mirroring the shard tombstone pass. Outside parallel regions.
	SinkExpire(cutoff uint64)
	// SinkReset discards triangle-derived state ahead of an epoch
	// rebuild's full re-traversal (which re-delivers every live-window
	// triangle via SinkTriangle). Structural edge state must survive.
	SinkReset()
	// SinkInvertible reports whether the sink tolerates the delta expiry
	// path; false forces Advance into an epoch rebuild, exactly like a
	// non-invertible analysis.
	SinkInvertible() bool
	// SinkCommit publishes rank-local event buffers collectively and
	// applies them; see the package comment. Runs outside parallel
	// regions, once per stream operation, on every process in order.
	SinkCommit(w *ygm.World)
}

// OpenStreamSinks is OpenStream with maintained sinks attached: every sink
// observes the seed graph (edges and triangles) before the first batch and
// is kept consistent through every Ingest/Advance thereafter. Sinks must
// be attached at open time — a sink attached later would have missed the
// seed events; durable recovery relies on this by re-seeding sinks from
// the checkpoint snapshot before WAL replay. Must be called outside
// parallel regions.
func OpenStreamSinks[VM, EM any](g *graph.DODGr[VM, EM], opts StreamOptions[EM], plan *Plan[EM], sinks []StreamSink[VM, EM], analyses ...StreamAttached[VM, EM]) (*Stream[VM, EM], error) {
	return openStream(g, opts, plan, sinks, analyses)
}

// Sinks returns the sinks attached at open time, in attachment order.
func (s *Stream[VM, EM]) Sinks() []StreamSink[VM, EM] { return s.sinks }

// sinkCommit runs every sink's commit collective, in attachment order —
// the same order on every process.
func (s *Stream[VM, EM]) sinkCommit() {
	for _, sk := range s.sinks {
		sk.SinkCommit(s.w)
	}
}
