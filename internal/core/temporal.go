package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// TemporalWindowCount counts triangles whose three edge timestamps fall
// within a window of delta (t_max − t_min ≤ delta) — δ-temporal triangle
// counting in the sense of the temporal-motif literature the paper cites
// ([40]). Edge metadata must be timestamps. Returns (within-window count,
// total triangles, survey result).
func TemporalWindowCount[VM any](g *graph.DODGr[VM, uint64], delta uint64, opts Options) (within, total uint64, res Result) {
	w := g.World()
	per := make([]uint64, w.Size())
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[VM, uint64]) {
		t1, _, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
		if t3-t1 <= delta {
			per[r.ID()]++
		}
	})
	res = s.Run()
	for _, c := range per {
		within += c
	}
	return within, res.Triangles, res
}

// TemporalWindowSweep evaluates several windows in one survey pass,
// returning the within-window count per delta (deltas need not be sorted).
func TemporalWindowSweep[VM any](g *graph.DODGr[VM, uint64], deltas []uint64, opts Options) (map[uint64]uint64, Result) {
	w := g.World()
	per := make([][]uint64, w.Size())
	for i := range per {
		per[i] = make([]uint64, len(deltas))
	}
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[VM, uint64]) {
		t1, _, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
		spread := t3 - t1
		row := per[r.ID()]
		for i, d := range deltas {
			if spread <= d {
				row[i]++
			}
		}
	})
	res := s.Run()
	out := make(map[uint64]uint64, len(deltas))
	for i, d := range deltas {
		var sum uint64
		for rank := range per {
			sum += per[rank][i]
		}
		out[d] = sum
	}
	return out, res
}
