package core

import (
	"fmt"

	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// TemporalWindowAnalysis counts triangles whose three edge timestamps fall
// within a window of delta (t_max − t_min ≤ delta) — δ-temporal triangle
// counting in the sense of the temporal-motif literature the paper cites
// ([40]). Edge metadata must be timestamps.
//
// For a survey whose *only* question is one δ-window, prefer a plan with
// CloseWithin(delta): it prunes the communication, not just the callback.
// This analysis exists for fusion — many δ thresholds (see
// TemporalSweepAnalysis) or a window alongside unrelated analyses, where
// the traversal must enumerate everything anyway.
func TemporalWindowAnalysis[VM any](delta uint64) Analysis[VM, uint64, uint64] {
	return Analysis[VM, uint64, uint64]{
		Name: fmt.Sprintf("window[δ=%d]", delta),
		Observe: func(_ *ygm.Rank, acc uint64, t *Triangle[VM, uint64]) uint64 {
			t1, _, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
			if t3-t1 <= delta {
				acc++
			}
			return acc
		},
		Merge: func(a, b uint64) uint64 { return a + b },
	}
}

// TemporalSweepAnalysis evaluates every δ threshold against every triangle
// in one pass: the accumulator is one within-window counter per delta,
// indexed like deltas (which need not be sorted).
func TemporalSweepAnalysis[VM any](deltas []uint64) Analysis[VM, uint64, []uint64] {
	return Analysis[VM, uint64, []uint64]{
		Name:     fmt.Sprintf("sweep[%d deltas]", len(deltas)),
		NewAccum: func() []uint64 { return make([]uint64, len(deltas)) },
		Observe: func(_ *ygm.Rank, acc []uint64, t *Triangle[VM, uint64]) []uint64 {
			t1, _, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
			spread := t3 - t1
			for i, d := range deltas {
				if spread <= d {
					acc[i]++
				}
			}
			return acc
		},
		Merge: func(a, b []uint64) []uint64 {
			for i := range a {
				a[i] += b[i]
			}
			return a
		},
	}
}

// TemporalWindowCount counts triangles whose three edge timestamps span at
// most delta. Returns (within-window count, total triangles, survey
// result).
//
// Deprecated: use Run with TemporalWindowAnalysis (or, to also prune the
// communication, a plan with CloseWithin).
func TemporalWindowCount[VM any](g *graph.DODGr[VM, uint64], delta uint64, opts Options) (within, total uint64, res Result) {
	var w uint64
	res = mustResult(Run(g, opts, nil, TemporalWindowAnalysis[VM](delta).Bind(&w)))
	return w, res.Triangles, res
}

// TemporalWindowSweep evaluates several windows in one fused survey pass —
// a single dry run/push/pull traversal covering every delta — returning
// the within-window count per delta (deltas need not be sorted). The
// returned Result reports that one traversal's phase stats;
// Result.Analyses names the sweep.
//
// Deprecated: use Run with TemporalSweepAnalysis, which additionally fuses
// with other analyses.
func TemporalWindowSweep[VM any](g *graph.DODGr[VM, uint64], deltas []uint64, opts Options) (map[uint64]uint64, Result) {
	var counts []uint64
	res := mustResult(Run(g, opts, nil, TemporalSweepAnalysis[VM](deltas).Bind(&counts)))
	out := make(map[uint64]uint64, len(deltas))
	for i, d := range deltas {
		out[d] = counts[i]
	}
	return out, res
}
