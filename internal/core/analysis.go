package core

import (
	"fmt"

	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// The unified analysis surface. TriPoll's thesis is that counting, closure
// times, label distributions, local counts and every other triangle survey
// are just different callbacks over one enumeration engine — so the engine
// should be asked every question in one pass. An Analysis captures one
// question as a value: how to make a per-rank accumulator, how to fold a
// triangle into it, how to combine rank accumulators, and how to turn the
// combined accumulator into the final answer. Run attaches any number of
// analyses to a single survey: one dry run, one push, one pull, every
// triangle dispatched to every analysis. k fused analyses move the
// enumeration traffic once instead of k times (-exp fusion measures it),
// and because accumulators live rank-local until the final reduction, none
// of the per-triangle work crosses the transport at all.

// Analysis describes one triangle analysis as a first-class value. VM and
// EM are the surveyed graph's vertex and edge metadata types; T is both the
// per-rank accumulator and the analysis result.
//
// Observe runs on the goroutine of the rank where each triangle was
// identified, exactly like a survey Callback: it may read rank-local state
// freely but must copy anything it retains from the Triangle (the pointer
// is into reused scratch). Observe receives the rank's current accumulator
// and returns the new one — return the argument for in-place reference
// types (maps), or the updated value for value types (counters).
//
// Merge combines two rank accumulators; it must be commutative and
// associative. It may mutate and return its first argument. Merge is
// required whenever the world has more than one rank.
//
// Finalize post-processes the fully merged accumulator into the published
// result; nil means identity. It runs once, outside parallel regions, so it
// may itself use collectives or Parallel (ClusteringAnalysis does, for its
// degree pass).
type Analysis[VM, EM, T any] struct {
	// Name identifies the analysis in Result.Analyses, bench records and
	// ablation output.
	Name string
	// NewAccum returns a fresh per-rank accumulator; nil means the zero
	// value of T.
	NewAccum func() T
	// Observe folds one triangle into the rank's accumulator.
	Observe func(r *ygm.Rank, acc T, t *Triangle[VM, EM]) T
	// Merge combines two rank accumulators (commutative, associative).
	Merge func(a, b T) T
	// Finalize turns the merged accumulator into the result; nil = identity.
	Finalize func(merged T) T
}

// Bind attaches the analysis to an output destination, producing the
// opaque handle Run consumes. When Run returns, *out holds the finalized
// result. A bound handle is single-use: it carries the accumulators of one
// run.
func (a Analysis[VM, EM, T]) Bind(out *T) Attached[VM, EM] {
	return &bound[VM, EM, T]{a: a, out: out}
}

// Attached is an Analysis bound to its output, ready to fuse into a Run.
// Only Analysis.Bind produces values of this type.
type Attached[VM, EM any] interface {
	// AnalysisName returns the bound analysis's Name.
	AnalysisName() string

	validate(nranks int) error
	start(nranks int)
	observe(r *ygm.Rank, t *Triangle[VM, EM])
	reduce(r *ygm.Rank)
	finish()
}

type bound[VM, EM, T any] struct {
	a    Analysis[VM, EM, T]
	out  *T
	accs []T
	root int // slot holding the combined accumulator after reduce
}

func (b *bound[VM, EM, T]) AnalysisName() string { return b.a.Name }

// validate rejects analyses the traversal or reduction would crash on:
// a missing Observe, or a missing Merge on a multi-rank world.
func (b *bound[VM, EM, T]) validate(nranks int) error {
	if b.a.Observe == nil {
		return fmt.Errorf("core: analysis %q has no Observe", b.a.Name)
	}
	if nranks > 1 && b.a.Merge == nil {
		return fmt.Errorf("core: analysis %q has no Merge (required on a %d-rank world)", b.a.Name, nranks)
	}
	return nil
}

func (b *bound[VM, EM, T]) start(nranks int) {
	b.accs = make([]T, nranks)
	if b.a.NewAccum != nil {
		for i := range b.accs {
			b.accs[i] = b.a.NewAccum()
		}
	}
}

func (b *bound[VM, EM, T]) observe(r *ygm.Rank, t *Triangle[VM, EM]) {
	id := r.ID()
	b.accs[id] = b.a.Observe(r, b.accs[id], t)
}

// reduce tree-reduces the rank accumulators in place: lg(n) levels, each
// rank merging with its stride-partner, ygm.Rendezvous between levels (the
// same shared-address-space discipline as the ygm collectives — the pairing
// is fixed, so the result is deterministic regardless of scheduling). After
// the region, accs[root] holds the combined accumulator, where root is the
// process leader's rank (0 in a single-process world).
//
// In a multi-process world only the local span's accumulators exist in
// this address space, so the tree runs over the local span and the process
// partials are then merged across processes: each leader contributes its
// partial to an AllGather (riding gob through the world's process link)
// and merges all of them in ascending process order. Merge is commutative
// and associative, so the combined accumulator is semantically identical
// to the single-process tree — and because result serialization
// canonicalizes map-backed accumulators, byte-identical downstream.
func (b *bound[VM, EM, T]) reduce(r *ygm.Rank) {
	w := r.World()
	first, count := w.LocalSpan()
	if r.ID() == first {
		// Single writer: finish() reads root after the region's wg.Wait.
		b.root = first
	}
	for stride := 1; stride < count; stride *= 2 {
		if stride > 1 {
			ygm.Rendezvous(r)
		}
		i := r.ID() - first
		if i%(2*stride) == 0 && i+stride < count {
			b.accs[first+i] = b.a.Merge(b.accs[first+i], b.accs[first+i+stride])
		}
	}
	if !w.Distributed() {
		return
	}
	ygm.Rendezvous(r) // every process's local tree is settled
	// Cross-process merge: leaders contribute their process partial; every
	// other rank's slot gathers as untyped nil and is skipped.
	var part any
	if r.ID() == first {
		part = b.accs[first]
	}
	parts := ygm.AllGather[any](r, part)
	if r.ID() == first {
		merged := b.accs[first]
		for i, p := range parts {
			if i == first || p == nil {
				continue
			}
			merged = b.a.Merge(merged, p.(T))
		}
		b.accs[first] = merged
	}
}

func (b *bound[VM, EM, T]) finish() {
	acc := b.accs[b.root]
	if b.a.Finalize != nil {
		acc = b.a.Finalize(acc)
	}
	*b.out = acc
	b.accs = nil
}

// Run executes every attached analysis in a single fused traversal of g:
// one dry run, one push, one pull (per Options.Mode), with each enumerated
// triangle dispatched to every analysis's Observe and each analysis's
// accumulators tree-reduced afterwards. A nil or empty plan surveys every
// triangle; a non-empty plan restricts all attached analyses to
// plan-matching triangles with the plan's predicates pushed down into the
// communication phases. With no analyses Run degenerates to a pure count.
//
// Result.Analyses names the fused analyses in attachment order;
// Result.Triangles counts (plan-matching) enumerated triangles regardless
// of what the analyses observe.
//
// Call outside parallel regions. Every stock survey in this package is a
// thin wrapper over Run with the matching stock Analysis. Errors are an
// invalid plan or a malformed analysis (no Observe, or no Merge on a
// multi-rank world).
func Run[VM, EM any](g *graph.DODGr[VM, EM], opts Options, plan *Plan[EM], analyses ...Attached[VM, EM]) (Result, error) {
	w := g.World()
	names := make([]string, len(analyses))
	for i, a := range analyses {
		if err := a.validate(w.Size()); err != nil {
			return Result{}, err
		}
		names[i] = a.AnalysisName()
		a.start(w.Size())
	}
	var cb Callback[VM, EM]
	switch len(analyses) {
	case 0:
		// Pure count: the engine maintains Result.Triangles by itself.
	case 1:
		cb = analyses[0].observe
	default:
		cb = func(r *ygm.Rank, t *Triangle[VM, EM]) {
			for _, a := range analyses {
				a.observe(r, t)
			}
		}
	}
	s, err := NewPlannedSurvey(g, opts, plan, cb)
	if err != nil {
		return Result{}, err
	}
	res := s.Run()
	res.Analyses = names
	if len(analyses) > 0 {
		w.Parallel(func(r *ygm.Rank) {
			for _, a := range analyses {
				a.reduce(r)
			}
		})
		for _, a := range analyses {
			a.finish()
		}
	}
	return res, nil
}

// mustResult unwraps Run for the deprecated stock wrappers, which pass a
// nil plan and well-formed stock analyses: no error is reachable there.
func mustResult(res Result, err error) Result {
	if err != nil {
		panic("core: stock survey wrapper: " + err.Error())
	}
	return res
}

// mergeCounts is the standard Merge for map-of-counters accumulators.
func mergeCounts[K comparable](a, b map[K]uint64) map[K]uint64 {
	for k, v := range b {
		a[k] += v
	}
	return a
}
