package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// Stock analyses: the paper's surveys packaged as Analysis values, all
// fusable into one traversal via Run. The historical free functions below
// each wrap Run with the matching stock analysis; prefer Run directly when
// asking the engine more than one question.

// CountAnalysis counts observed triangles. The engine maintains
// Result.Triangles anyway; attach this when a fused run wants the count
// published alongside other analysis outputs (or attributed by name).
func CountAnalysis[VM, EM any]() Analysis[VM, EM, uint64] {
	return Analysis[VM, EM, uint64]{
		Name:    "count",
		Observe: func(_ *ygm.Rank, acc uint64, _ *Triangle[VM, EM]) uint64 { return acc + 1 },
		Merge:   func(a, b uint64) uint64 { return a + b },
	}
}

// VertexCountAnalysis accumulates per-vertex triangle participation counts
// (the local counting of §5.3 that truss decomposition and clustering
// coefficients consume). Accumulators are rank-local maps merged at
// reduction — no per-triangle communication at all.
func VertexCountAnalysis[VM, EM any]() Analysis[VM, EM, map[uint64]uint64] {
	return Analysis[VM, EM, map[uint64]uint64]{
		Name:     "vertexcounts",
		NewAccum: func() map[uint64]uint64 { return make(map[uint64]uint64) },
		Observe: func(_ *ygm.Rank, acc map[uint64]uint64, t *Triangle[VM, EM]) map[uint64]uint64 {
			acc[t.P]++
			acc[t.Q]++
			acc[t.R]++
			return acc
		},
		Merge: mergeCounts[uint64],
	}
}

// Count runs a survey with no attached analyses — the simple triangle
// counting of Alg. 2, the "subset of the functionality" used for all of the
// paper's performance comparisons.
//
// Deprecated: equivalent to Run(g, opts, nil); kept as the conventional
// name for the bare count.
func Count[VM, EM any](g *graph.DODGr[VM, EM], opts Options) Result {
	return mustResult(Run[VM, EM](g, opts, nil))
}

// LocalVertexCounts computes per-vertex triangle participation counts.
//
// Deprecated: use Run with VertexCountAnalysis, which fuses with other
// analyses in one traversal.
func LocalVertexCounts[VM, EM any](g *graph.DODGr[VM, EM], opts Options) (map[uint64]uint64, Result) {
	var counts map[uint64]uint64
	res := mustResult(Run(g, opts, nil, VertexCountAnalysis[VM, EM]().Bind(&counts)))
	return counts, res
}

// ClusteringStats holds the output of ClusteringAnalysis. Under a plan,
// t(v) and |T| count only plan-matching triangles while degrees and
// wedges remain the full graph's, so Average and Global become
// plan-restricted variants of the standard definitions.
type ClusteringStats struct {
	// Average is the mean of per-vertex clustering coefficients
	// cc(v) = 2·t(v) / (d(v)·(d(v)−1)) over vertices with d(v) ≥ 2.
	Average float64
	// Global is the transitivity 3·|T| / |wedges of G|.
	Global float64
	// Triangles is |T(G)| (plan-matching triangles under a plan).
	Triangles uint64
	// Wedges counts unordered neighbor pairs Σ_v C(d(v), 2) in G (not G⁺).
	Wedges uint64
}

// ClusteringAccum is ClusteringAnalysis's accumulator and result: the
// per-vertex counts it accumulates during the traversal and the statistics
// its Finalize derives from them.
type ClusteringAccum struct {
	Counts map[uint64]uint64
	Stats  ClusteringStats
}

// ClusteringAnalysis derives clustering statistics from fused per-vertex
// triangle counts — one of the standard downstream consumers of local
// counts the paper cites ([7]). The constructor captures g because Finalize
// runs a degree pass over the built graph (outside the traversal; it moves
// no triangle data).
func ClusteringAnalysis[VM, EM any](g *graph.DODGr[VM, EM]) Analysis[VM, EM, ClusteringAccum] {
	return Analysis[VM, EM, ClusteringAccum]{
		Name:     "clustering",
		NewAccum: func() ClusteringAccum { return ClusteringAccum{Counts: make(map[uint64]uint64)} },
		Observe: func(_ *ygm.Rank, acc ClusteringAccum, t *Triangle[VM, EM]) ClusteringAccum {
			acc.Counts[t.P]++
			acc.Counts[t.Q]++
			acc.Counts[t.R]++
			return acc
		},
		Merge: func(a, b ClusteringAccum) ClusteringAccum {
			a.Counts = mergeCounts(a.Counts, b.Counts)
			return a
		},
		Finalize: func(acc ClusteringAccum) ClusteringAccum {
			w := g.World()
			var sum float64
			var verts uint64
			// The degree pass runs rank-local and reduces with collectives,
			// so it is correct on a multi-process world (where only the
			// local span's vertices are in this address space). The
			// reduction order matches the historical slot-order loop, so
			// single-process results are bit-identical.
			w.Parallel(func(r *ygm.Rank) {
				var pSum float64
				var pVerts, pWedges uint64
				for _, v := range g.LocalVertices(r) {
					d := uint64(v.Deg)
					if d < 2 {
						continue
					}
					pairs := d * (d - 1) / 2
					pWedges += pairs
					pVerts++
					pSum += float64(acc.Counts[v.ID]) / float64(pairs)
				}
				gSum := ygm.AllReduce(r, pSum, func(a, b float64) float64 { return a + b })
				gVerts := ygm.AllReduceSum(r, pVerts)
				gWedges := ygm.AllReduceSum(r, pWedges)
				if r.ID() == w.LeaderID() {
					sum, verts = gSum, gVerts
					acc.Stats.Wedges = gWedges
				}
			})
			for _, c := range acc.Counts {
				acc.Stats.Triangles += c
			}
			acc.Stats.Triangles /= 3
			if verts > 0 {
				acc.Stats.Average = sum / float64(verts)
			}
			if acc.Stats.Wedges > 0 {
				acc.Stats.Global = 3 * float64(acc.Stats.Triangles) / float64(acc.Stats.Wedges)
			}
			return acc
		},
	}
}

// ClusteringCoefficients derives clustering statistics from local triangle
// counts.
//
// Deprecated: use Run with ClusteringAnalysis, which fuses with other
// analyses in one traversal.
func ClusteringCoefficients[VM, EM any](g *graph.DODGr[VM, EM], opts Options) (ClusteringStats, Result) {
	var acc ClusteringAccum
	res := mustResult(Run(g, opts, nil, ClusteringAnalysis(g).Bind(&acc)))
	return acc.Stats, res
}

// MaxEdgeLabelAnalysis is Alg. 3: the distribution of the maximum edge
// label across triangles. distinctLabels applies the algorithm's guard that
// the three vertex labels be pairwise distinct; pass false on graphs whose
// vertices carry no labels (the guard would then reject every triangle).
func MaxEdgeLabelAnalysis[VM comparable](distinctLabels bool) Analysis[VM, uint64, map[uint64]uint64] {
	return Analysis[VM, uint64, map[uint64]uint64]{
		Name:     "maxlabel",
		NewAccum: func() map[uint64]uint64 { return make(map[uint64]uint64) },
		Observe: func(_ *ygm.Rank, acc map[uint64]uint64, t *Triangle[VM, uint64]) map[uint64]uint64 {
			if distinctLabels && (t.MetaP == t.MetaQ || t.MetaQ == t.MetaR || t.MetaP == t.MetaR) {
				return acc
			}
			max := t.MetaPQ
			if t.MetaPR > max {
				max = t.MetaPR
			}
			if t.MetaQR > max {
				max = t.MetaQR
			}
			acc[max]++
			return acc
		},
		Merge: mergeCounts[uint64],
	}
}

// MaxEdgeLabelDistribution is Alg. 3: among triangles whose three vertex
// labels are pairwise distinct, the distribution of the maximum edge label.
//
// Deprecated: use Run with MaxEdgeLabelAnalysis, which fuses with other
// analyses in one traversal.
func MaxEdgeLabelDistribution[VM comparable](g *graph.DODGr[VM, uint64], opts Options) (map[uint64]uint64, Result) {
	var dist map[uint64]uint64
	res := mustResult(Run(g, opts, nil, MaxEdgeLabelAnalysis[VM](true).Bind(&dist)))
	return dist, res
}

// TimePair is a (⌈log₂ Δt_open⌉, ⌈log₂ Δt_close⌉) bucket pair.
type TimePair = serialize.Pair[int64, int64]

// ClosureTimeAnalysis is Alg. 4 — the Reddit experiment of §5.7. Edge
// metadata must be timestamps. For each triangle with edge times
// t1 ≤ t2 ≤ t3 it buckets the wedge opening time Δt_open = t2 − t1 and
// triangle closing time Δt_close = t3 − t1 into ceil-log₂ bins and counts
// the joint pair.
//
// (Alg. 4 line 7 repeats Alg. 3's distinct-vertex-label guard, but §5.7
// states the Reddit survey uses no vertex metadata; the guard is a
// pseudocode artifact and is omitted here.)
func ClosureTimeAnalysis[VM any]() Analysis[VM, uint64, *stats.Joint2D] {
	return Analysis[VM, uint64, *stats.Joint2D]{
		Name:     "closure",
		NewAccum: stats.NewJoint2D,
		Observe: func(_ *ygm.Rank, acc *stats.Joint2D, t *Triangle[VM, uint64]) *stats.Joint2D {
			t1, t2, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
			acc.Add(int(stats.CeilLog2(t2-t1)), int(stats.CeilLog2(t3-t1)), 1)
			return acc
		},
		Merge: (*stats.Joint2D).Merge,
	}
}

// ClosureTimes is Alg. 4 (the §5.7 Reddit survey).
//
// Deprecated: use Run with ClosureTimeAnalysis, which fuses with other
// analyses in one traversal.
func ClosureTimes[VM any](g *graph.DODGr[VM, uint64], opts Options) (*stats.Joint2D, Result) {
	var joint *stats.Joint2D
	res := mustResult(Run(g, opts, nil, ClosureTimeAnalysis[VM]().Bind(&joint)))
	return joint, res
}

// sort3 returns a, b, c in ascending order.
func sort3(a, b, c uint64) (uint64, uint64, uint64) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// DegreeTriple is a (⌈log₂ d(p)⌉, ⌈log₂ d(q)⌉, ⌈log₂ d(r)⌉) bucket triple.
type DegreeTriple = serialize.Triple[int64, int64, int64]

// DegreeTripleAnalysis is the §5.9 metadata-impact survey: vertex metadata
// is the vertex's degree, and the analysis counts log₂-bucketed degree
// triples across all triangles. VM must therefore be uint64 holding d(v).
func DegreeTripleAnalysis[EM any]() Analysis[uint64, EM, map[DegreeTriple]uint64] {
	return Analysis[uint64, EM, map[DegreeTriple]uint64]{
		Name:     "degtriples",
		NewAccum: func() map[DegreeTriple]uint64 { return make(map[DegreeTriple]uint64) },
		Observe: func(_ *ygm.Rank, acc map[DegreeTriple]uint64, t *Triangle[uint64, EM]) map[DegreeTriple]uint64 {
			acc[DegreeTriple{
				First:  int64(stats.CeilLog2(t.MetaP)),
				Second: int64(stats.CeilLog2(t.MetaQ)),
				Third:  int64(stats.CeilLog2(t.MetaR)),
			}]++
			return acc
		},
		Merge: mergeCounts[DegreeTriple],
	}
}

// DegreeTriples counts log₂-bucketed degree triples across all triangles.
//
// Deprecated: use Run with DegreeTripleAnalysis, which fuses with other
// analyses in one traversal.
func DegreeTriples[EM any](g *graph.DODGr[uint64, EM], opts Options) (map[DegreeTriple]uint64, Result) {
	var counts map[DegreeTriple]uint64
	res := mustResult(Run(g, opts, nil, DegreeTripleAnalysis[EM]().Bind(&counts)))
	return counts, res
}
