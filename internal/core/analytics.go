package core

import (
	"tripoll/internal/container"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// Count runs a survey with no callback — the simple triangle counting of
// Alg. 2, the "subset of the functionality" used for all of the paper's
// performance comparisons.
func Count[VM, EM any](g *graph.DODGr[VM, EM], opts Options) Result {
	return NewSurvey(g, opts, nil).Run()
}

// LocalVertexCounts computes per-vertex triangle participation counts (the
// local counting used by truss decomposition and clustering-coefficient
// applications, §5.3) by pairing a counting-set callback with the survey.
// The returned map is the gathered global result.
func LocalVertexCounts[VM, EM any](g *graph.DODGr[VM, EM], opts Options) (map[uint64]uint64, Result) {
	w := g.World()
	counter := container.NewCounter[uint64](w, serialize.Uint64Codec(), container.CounterOptions{})
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[VM, EM]) {
		counter.Inc(r, t.P)
		counter.Inc(r, t.Q)
		counter.Inc(r, t.R)
	})
	res := s.Run()
	var gathered map[uint64]uint64
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			gathered = m
		}
	})
	return gathered, res
}

// ClusteringStats holds the output of ClusteringCoefficients.
type ClusteringStats struct {
	// Average is the mean of per-vertex clustering coefficients
	// cc(v) = 2·t(v) / (d(v)·(d(v)−1)) over vertices with d(v) ≥ 2.
	Average float64
	// Global is the transitivity 3·|T| / |wedges of G|.
	Global float64
	// Triangles is |T(G)|.
	Triangles uint64
	// Wedges counts unordered neighbor pairs Σ_v C(d(v), 2) in G (not G⁺).
	Wedges uint64
}

// ClusteringCoefficients derives clustering statistics from local triangle
// counts — one of the standard downstream consumers of per-vertex counts
// the paper cites ([7]).
func ClusteringCoefficients[VM, EM any](g *graph.DODGr[VM, EM], opts Options) (ClusteringStats, Result) {
	counts, res := LocalVertexCounts(g, opts)
	w := g.World()
	var out ClusteringStats
	w.Parallel(func(r *ygm.Rank) {
		var ccSum float64
		var ccVerts, wedges uint64
		for _, v := range g.LocalVertices(r) {
			d := uint64(v.Deg)
			if d < 2 {
				continue
			}
			pairs := d * (d - 1) / 2
			wedges += pairs
			ccVerts++
			ccSum += float64(counts[v.ID]) / float64(pairs)
		}
		totSum := ygm.AllReduce(r, ccSum, func(a, b float64) float64 { return a + b })
		totVerts := ygm.AllReduceSum(r, ccVerts)
		totWedges := ygm.AllReduceSum(r, wedges)
		if r.ID() == 0 {
			if totVerts > 0 {
				out.Average = totSum / float64(totVerts)
			}
			out.Wedges = totWedges
			if totWedges > 0 {
				out.Global = 3 * float64(res.Triangles) / float64(totWedges)
			}
		}
	})
	out.Triangles = res.Triangles
	return out, res
}

// MaxEdgeLabelDistribution is Alg. 3: among triangles whose three vertex
// labels are pairwise distinct, the distribution of the maximum edge label.
// It is the windowed variant with no plan (a nil plan never errors).
func MaxEdgeLabelDistribution[VM comparable](g *graph.DODGr[VM, uint64], opts Options) (map[uint64]uint64, Result) {
	gathered, res, err := WindowedMaxEdgeLabelDistribution[VM](g, nil, opts)
	if err != nil {
		panic("core: nil plan rejected: " + err.Error())
	}
	return gathered, res
}

// TimePair is a (⌈log₂ Δt_open⌉, ⌈log₂ Δt_close⌉) bucket pair.
type TimePair = serialize.Pair[int64, int64]

// ClosureTimes is Alg. 4 — the Reddit experiment of §5.7. Edge metadata
// must be timestamps. For each triangle with edge times t1 ≤ t2 ≤ t3 it
// buckets the wedge opening time Δt_open = t2 − t1 and triangle closing
// time Δt_close = t3 − t1 into ceil-log₂ bins and counts the joint pair.
//
// (Alg. 4 line 7 repeats Alg. 3's distinct-vertex-label guard, but §5.7
// states the Reddit survey uses no vertex metadata; the guard is a
// pseudocode artifact and is omitted here.)
// It is the windowed variant with no plan (a nil plan never errors).
func ClosureTimes[VM any](g *graph.DODGr[VM, uint64], opts Options) (*stats.Joint2D, Result) {
	joint, res, err := WindowedClosureTimes[VM](g, nil, opts)
	if err != nil {
		panic("core: nil plan rejected: " + err.Error())
	}
	return joint, res
}

// sort3 returns a, b, c in ascending order.
func sort3(a, b, c uint64) (uint64, uint64, uint64) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// DegreeTriple is a (⌈log₂ d(p)⌉, ⌈log₂ d(q)⌉, ⌈log₂ d(r)⌉) bucket triple.
type DegreeTriple = serialize.Triple[int64, int64, int64]

// DegreeTriples is the §5.9 metadata-impact survey: vertex metadata is the
// vertex's degree, and the callback counts log₂-bucketed degree triples
// across all triangles. VM must therefore be uint64 holding d(v).
func DegreeTriples[EM any](g *graph.DODGr[uint64, EM], opts Options) (map[DegreeTriple]uint64, Result) {
	w := g.World()
	codec := serialize.TripleCodec(serialize.Int64Codec(), serialize.Int64Codec(), serialize.Int64Codec())
	counter := container.NewCounter[DegreeTriple](w, codec, container.CounterOptions{})
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[uint64, EM]) {
		counter.Inc(r, DegreeTriple{
			First:  int64(stats.CeilLog2(t.MetaP)),
			Second: int64(stats.CeilLog2(t.MetaQ)),
			Third:  int64(stats.CeilLog2(t.MetaR)),
		})
	})
	res := s.Run()
	var gathered map[DegreeTriple]uint64
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			gathered = m
		}
	})
	return gathered, res
}
