package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// The fusion equivalence property: Run(g, opts, plan, a1, a2, …) produces
// results identical — rendered byte-for-byte — to running each analysis
// alone, across both modes, both ordering strategies, and planned as well
// as unplanned surveys. Fusing analyses must change only the traffic, never
// any answer.

// canon renders an analysis result deterministically (map keys sorted) so
// equality can be checked byte-for-byte.
func canon(v any) string {
	switch m := v.(type) {
	case uint64:
		return fmt.Sprintf("%d", m)
	case []uint64:
		return fmt.Sprintf("%v", m)
	case map[uint64]uint64:
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%d:%d;", k, m[k])
		}
		return sb.String()
	case map[EdgeKey]uint64:
		keys := make([]EdgeKey, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].First != keys[j].First {
				return keys[i].First < keys[j].First
			}
			return keys[i].Second < keys[j].Second
		})
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%d-%d:%d;", k.First, k.Second, m[k])
		}
		return sb.String()
	case LabelIndex[uint64]:
		keys := make([]LabelIndexKey[uint64], 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Edge != b.Edge {
				if a.Edge.First != b.Edge.First {
					return a.Edge.First < b.Edge.First
				}
				return a.Edge.Second < b.Edge.Second
			}
			return a.Label < b.Label
		})
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%d-%d/%d:%d;", k.Edge.First, k.Edge.Second, k.Label, m[k])
		}
		return sb.String()
	case *stats.Joint2D:
		return m.Render("", "x", "y") + fmt.Sprintf("|total=%d", m.Total())
	default:
		t := fmt.Sprintf("%#v", v)
		return t
	}
}

func TestFusedEquivalentToSolo(t *testing.T) {
	plans := []struct {
		name string
		mk   func() *Plan[uint64]
	}{
		{"unplanned", func() *Plan[uint64] { return nil }},
		{"delta", func() *Plan[uint64] { return TemporalPlan().CloseWithin(200) }},
		{"edgepred+window", func() *Plan[uint64] {
			return TemporalPlan().WhereEdge(func(em uint64) bool { return em%3 != 0 }).Window(50, 900)
		}},
	}
	rng := rand.New(rand.NewSource(23))
	nv := 45
	edges := make([][2]uint64, 400)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	const nranks = 4
	for _, ord := range []graph.Ordering{graph.OrderDegree, graph.OrderDegeneracy} {
		w := ygm.MustWorld(nranks, ygm.Options{})
		g := buildWithTimesOrdered(t, w, edges, hashTime, ord)
		for _, mode := range []Mode{PushOnly, PushPull} {
			for _, pc := range plans {
				name := fmt.Sprintf("%s/%s/%s", ord, mode, pc.name)

				// The stock analyses under test, each with a solo-run and a
				// fused-run output slot.
				var soloCount, fusedCount uint64
				var soloVerts, fusedVerts map[uint64]uint64
				var soloEdges, fusedEdges map[EdgeKey]uint64
				var soloJoint, fusedJoint *stats.Joint2D
				var soloLabels, fusedLabels map[uint64]uint64
				var soloIx, fusedIx LabelIndex[uint64]
				var soloSweep, fusedSweep []uint64
				deltas := []uint64{50, 400, 150}

				solo := []struct {
					att Attached[uint64, uint64]
					out func() any
				}{
					{CountAnalysis[uint64, uint64]().Bind(&soloCount), func() any { return soloCount }},
					{VertexCountAnalysis[uint64, uint64]().Bind(&soloVerts), func() any { return soloVerts }},
					{EdgeCountAnalysis[uint64, uint64]().Bind(&soloEdges), func() any { return soloEdges }},
					{ClosureTimeAnalysis[uint64]().Bind(&soloJoint), func() any { return soloJoint }},
					{MaxEdgeLabelAnalysis[uint64](true).Bind(&soloLabels), func() any { return soloLabels }},
					{LabelIndexAnalysis[uint64, uint64]().Bind(&soloIx), func() any { return soloIx }},
					{TemporalSweepAnalysis[uint64](deltas).Bind(&soloSweep), func() any { return soloSweep }},
				}
				fusedAtt := []Attached[uint64, uint64]{
					CountAnalysis[uint64, uint64]().Bind(&fusedCount),
					VertexCountAnalysis[uint64, uint64]().Bind(&fusedVerts),
					EdgeCountAnalysis[uint64, uint64]().Bind(&fusedEdges),
					ClosureTimeAnalysis[uint64]().Bind(&fusedJoint),
					MaxEdgeLabelAnalysis[uint64](true).Bind(&fusedLabels),
					LabelIndexAnalysis[uint64, uint64]().Bind(&fusedIx),
					TemporalSweepAnalysis[uint64](deltas).Bind(&fusedSweep),
				}
				fusedOut := []func() any{
					func() any { return fusedCount },
					func() any { return fusedVerts },
					func() any { return fusedEdges },
					func() any { return fusedJoint },
					func() any { return fusedLabels },
					func() any { return fusedIx },
					func() any { return fusedSweep },
				}

				var soloMsgs, soloBytes int64
				var soloTriangles uint64
				for i, s := range solo {
					res, err := Run(g, Options{Mode: mode}, pc.mk(), s.att)
					if err != nil {
						t.Fatalf("%s: solo run %d: %v", name, i, err)
					}
					soloMsgs += totalMsgs(res)
					soloBytes += totalBytes(res)
					soloTriangles = res.Triangles
				}
				fres, err := Run(g, Options{Mode: mode}, pc.mk(), fusedAtt...)
				if err != nil {
					t.Fatalf("%s: fused run: %v", name, err)
				}
				if fres.Triangles != soloTriangles {
					t.Fatalf("%s: fused enumerated %d triangles, solo %d", name, fres.Triangles, soloTriangles)
				}
				for i, s := range solo {
					want, got := canon(s.out()), canon(fusedOut[i]())
					if want != got {
						t.Errorf("%s: analysis %q differs fused vs solo:\nfused: %s\nsolo:  %s",
							name, fusedAtt[i].AnalysisName(), got, want)
					}
				}
				// Fusing k analyses must cost exactly one traversal: 1/k of
				// the sequential messages (phase traffic does not depend on
				// attached analyses, only on graph, mode and plan). Bytes
				// carry per-batch framing whose flush boundaries depend on
				// scheduling, so they only reduce strictly, not exactly.
				k := int64(len(solo))
				if totalMsgs(fres)*k != soloMsgs {
					t.Errorf("%s: fused moved %d msgs; %d sequential runs moved %d (want exactly k×)",
						name, totalMsgs(fres), k, soloMsgs)
				}
				if soloMsgs > 0 && (totalMsgs(fres) >= soloMsgs || totalBytes(fres) >= soloBytes) {
					t.Errorf("%s: fused traffic %d msgs/%d bytes not strictly below sequential %d/%d",
						name, totalMsgs(fres), totalBytes(fres), soloMsgs, soloBytes)
				}
				wantNames := make([]string, len(fusedAtt))
				for i, a := range fusedAtt {
					wantNames[i] = a.AnalysisName()
				}
				if !reflect.DeepEqual(fres.Analyses, wantNames) {
					t.Errorf("%s: Result.Analyses = %v, want %v", name, fres.Analyses, wantNames)
				}
			}
		}
		w.Close()
	}
}

// TestReduceAcrossRankCounts exercises the tree reduction at power-of-two
// and odd world sizes: merged accumulators must agree with the engine's
// own triangle count at every size.
func TestReduceAcrossRankCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := make([][2]uint64, 300)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(30)), uint64(rng.Intn(30))}
	}
	var wantCount uint64
	var wantVerts map[uint64]uint64
	for i, nranks := range []int{1, 2, 3, 5, 8} {
		w := ygm.MustWorld(nranks, ygm.Options{})
		g := buildWithTimes(t, w, edges, hashTime)
		var count uint64
		var verts map[uint64]uint64
		res, err := Run(g, Options{},
			nil,
			CountAnalysis[uint64, uint64]().Bind(&count),
			VertexCountAnalysis[uint64, uint64]().Bind(&verts),
		)
		if err != nil {
			t.Fatalf("%d ranks: %v", nranks, err)
		}
		if count != res.Triangles {
			t.Errorf("%d ranks: count analysis %d != Result.Triangles %d", nranks, count, res.Triangles)
		}
		var sum uint64
		for _, c := range verts {
			sum += c
		}
		if sum != 3*res.Triangles {
			t.Errorf("%d ranks: vertex counts sum %d, want 3·|T| = %d", nranks, sum, 3*res.Triangles)
		}
		if i == 0 {
			wantCount, wantVerts = count, verts
		} else {
			if count != wantCount || !reflect.DeepEqual(verts, wantVerts) {
				t.Errorf("%d ranks: results differ from 1-rank run", nranks)
			}
		}
		w.Close()
	}
}

// TestSweepSingleTraversal asserts the satellite claim directly: a
// TemporalWindowSweep over many deltas reports the phase stats of a
// *single* traversal — identical to one bare count of the same graph in
// the same mode — and names the sweep in Result.Analyses.
func TestSweepSingleTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := make([][2]uint64, 350)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(40)), uint64(rng.Intn(40))}
	}
	const nranks = 4
	w := ygm.MustWorld(nranks, ygm.Options{})
	g := buildWithTimes(t, w, edges, hashTime)
	defer w.Close()
	deltas := []uint64{10, 100, 400, 999}
	for _, mode := range []Mode{PushOnly, PushPull} {
		counts, res := TemporalWindowSweep(g, deltas, Options{Mode: mode})
		ref := Count(g, Options{Mode: mode})
		if totalMsgs(res) != totalMsgs(ref) || totalBytes(res) != totalBytes(ref) {
			t.Errorf("%s: sweep over %d deltas moved %d msgs/%d bytes; a single traversal moves %d/%d",
				mode, len(deltas), totalMsgs(res), totalBytes(res), totalMsgs(ref), totalBytes(ref))
		}
		if res.WedgeChecks != ref.WedgeChecks {
			t.Errorf("%s: sweep performed %d wedge checks, single traversal %d",
				mode, res.WedgeChecks, ref.WedgeChecks)
		}
		want := []string{fmt.Sprintf("sweep[%d deltas]", len(deltas))}
		if !reflect.DeepEqual(res.Analyses, want) {
			t.Errorf("%s: Result.Analyses = %v, want %v", mode, res.Analyses, want)
		}
		// Every per-delta answer must match its standalone windowed count.
		for _, d := range deltas {
			within, total, _ := TemporalWindowCount(g, d, Options{Mode: mode})
			if counts[d] != within {
				t.Errorf("%s: sweep[δ=%d] = %d, standalone window count %d", mode, d, counts[d], within)
			}
			if total != res.Triangles {
				t.Errorf("%s: standalone total %d, sweep traversal saw %d", mode, total, res.Triangles)
			}
		}
		// Monotonicity over sorted deltas (sanity on the shared spread).
		if counts[10] > counts[100] || counts[100] > counts[400] || counts[400] > counts[999] {
			t.Errorf("%s: sweep counts not monotone in delta: %v", mode, counts)
		}
	}
}

// TestClusteringAnalysisKnownGraph pins the clustering analysis to closed
// forms on K4: every vertex has cc = 1, transitivity 1, 4 triangles, 12
// wedges.
func TestClusteringAnalysisKnownGraph(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	edges := [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	g := buildWithTimes(t, w, edges, func(lo, hi uint64) uint64 { return lo + hi })
	var acc ClusteringAccum
	res, err := Run(g, Options{}, nil, ClusteringAnalysis(g).Bind(&acc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 4 {
		t.Fatalf("K4 has 4 triangles, engine found %d", res.Triangles)
	}
	s := acc.Stats
	if s.Average != 1.0 || s.Global != 1.0 || s.Triangles != 4 || s.Wedges != 12 {
		t.Errorf("K4 clustering = %+v, want Average=1 Global=1 Triangles=4 Wedges=12", s)
	}
}

// TestRunNoAnalyses pins the degenerate form: Run with no analyses is the
// bare count, with an empty (but attributable) Analyses list; a bare
// Survey.Run leaves Analyses nil.
func TestRunNoAnalyses(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	edges := [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 0}}
	g := buildWithTimes(t, w, edges, func(lo, hi uint64) uint64 { return 0 })
	res, err := Run[uint64, uint64](g, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 2 { // Δ012 and Δ023
		t.Fatalf("triangles = %d, want 2", res.Triangles)
	}
	if res.Analyses == nil || len(res.Analyses) != 0 {
		t.Errorf("Run with no analyses: Analyses = %#v, want empty non-nil", res.Analyses)
	}
	if bare := NewSurvey(g, Options{}, nil).Run(); bare.Analyses != nil {
		t.Errorf("bare Survey.Run: Analyses = %#v, want nil", bare.Analyses)
	}
	if _, err := Run[uint64, uint64](g, Options{}, NewPlan[uint64]().CloseWithin(5)); err == nil {
		t.Error("Run accepted a temporal plan without a Timestamps accessor")
	}
	// Malformed analyses are rejected up front, not mid-reduction.
	var out uint64
	noMerge := Analysis[uint64, uint64, uint64]{
		Name:    "no-merge",
		Observe: func(_ *ygm.Rank, acc uint64, _ *Triangle[uint64, uint64]) uint64 { return acc + 1 },
	}
	if _, err := Run(g, Options{}, nil, noMerge.Bind(&out)); err == nil {
		t.Error("Run accepted a Merge-less analysis on a multi-rank world")
	}
	noObserve := Analysis[uint64, uint64, uint64]{Name: "no-observe"}
	if _, err := Run(g, Options{}, nil, noObserve.Bind(&out)); err == nil {
		t.Error("Run accepted an Observe-less analysis")
	}
}
