package core

import (
	"tripoll/internal/ygm"
)

// Triangle carries one discovered triangle: its vertices in <+ order
// (P <+ Q <+ R; P is the pivot) and all six metadata items — meta(Δpqr) in
// the paper's shorthand. Callbacks receive a pointer into a per-rank scratch
// struct that is reused for the next triangle; callbacks must copy anything
// they retain.
type Triangle[VM, EM any] struct {
	P, Q, R                uint64
	MetaP, MetaQ, MetaR    VM
	MetaPQ, MetaPR, MetaQR EM
}

// Callback is the user-defined survey operation executed once per triangle
// (Alg. 1 line 10). It runs on the goroutine of the rank where the triangle
// was identified — Rank(Q) when the wedge was pushed, Rank(P) when Q's
// adjacency was pulled — so it may freely use rank-local state and
// distributed containers, but must not call Barrier.
type Callback[VM, EM any] func(r *ygm.Rank, t *Triangle[VM, EM])

// Mode selects the survey algorithm.
type Mode int

const (
	// PushPull is the optimized algorithm of §4.4 (the default).
	PushPull Mode = iota
	// PushOnly is the simple algorithm of Alg. 1.
	PushOnly
)

func (m Mode) String() string {
	switch m {
	case PushPull:
		return "push-pull"
	case PushOnly:
		return "push-only"
	default:
		return "unknown-mode"
	}
}
