package core

import (
	"time"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Options configures a survey.
type Options struct {
	// Mode selects Push-Only (Alg. 1) or Push-Pull (§4.4).
	Mode Mode
	// PullFactor scales the pull side of the dry-run comparison: a target
	// vertex q is pulled by a source rank when
	//     |Adj⁺(q)| · PullFactor  <  Σ_{p local to source} |candidates → q|.
	// 1.0 reproduces the paper's inequality; other values are exposed for
	// the ablation study of the decision threshold. Values that cannot
	// scale a cost — zero, negatives (which would flip the inequality for
	// every non-empty adjacency), NaN — are clamped to 1.0.
	PullFactor float64
}

// PhaseStats describes one phase of a survey run: its wall-clock duration
// and the communication it generated (Table 4 reports exactly these).
type PhaseStats struct {
	Duration time.Duration
	Bytes    int64
	Messages int64
	Batches  int64
}

// Result summarizes a survey run.
type Result struct {
	Mode Mode
	// Ordering names the vertex-ordering strategy the surveyed graph was
	// built with ("degree" or "degeneracy") so ablation output and bench
	// records can attribute work measures to the order that produced them.
	Ordering  string
	Triangles uint64 // total callback firings == |T(G)|

	// Analyses names the analyses fused into this traversal, in attachment
	// order, when the run came through Run; nil for bare Survey.Run calls.
	// Bench records and ablation output use it to attribute a run to the
	// questions it answered in one pass.
	Analyses []string

	// DryRun, Push and Pull break the run into the paper's three phases
	// (Fig. 7). Push-Only runs populate only Push.
	DryRun PhaseStats
	Push   PhaseStats
	Pull   PhaseStats

	Total time.Duration

	// PullsGranted counts (target vertex, source rank) pairs that chose
	// pull; divided by world size it is Table 3's "Avg. Pulls Per Rank".
	PullsGranted    uint64
	AvgPullsPerRank float64

	// WedgeChecks counts candidate comparisons actually performed, the
	// algorithm's unit of work (|W⁺| when nothing is skipped).
	WedgeChecks uint64
	// MaxRankWedgeChecks is the largest number of wedge checks any single
	// rank performed — the critical-path work measure. On a simulated-rank
	// runtime (ranks are goroutines, possibly on few physical cores) this,
	// not wall clock, is the quantity strong scaling should be judged by.
	MaxRankWedgeChecks uint64
	// WorkBalance is WedgeChecks / (ranks · MaxRankWedgeChecks) ∈ (0, 1]:
	// 1.0 means perfectly balanced intersection work.
	WorkBalance float64

	// Planned reports whether a survey plan's pushed-down predicates were
	// active; when true, Triangles counts only plan-matching triangles
	// (callback firings), and the Pruned* counters below are meaningful.
	Planned bool
	// PrunedBatches counts wedge batches never enqueued: the batch's edge
	// (p,q) failed the edge filter, or every candidate in its suffix failed
	// the candidate filter.
	PrunedBatches uint64
	// PrunedCandidates counts suffix entries dropped before encoding —
	// wedge checks (and their bytes) that never happened anywhere.
	PrunedCandidates uint64
	// PrunedPullEntries counts Adj⁺ᵐ(q) entries omitted from pull replies
	// (including all entries of replies skipped entirely).
	PrunedPullEntries uint64

	// Delta reports that this Result describes one incremental stream
	// batch (Stream.Ingest or Stream.Advance), not a full traversal: the
	// phase stats cover only the delta-scoped dry run/push/pull, Triangles
	// counts the (plan-matching) triangles the batch created or destroyed,
	// and Mutate holds the structural mutation traffic (edge routing and
	// metadata completion) that preceded the traversal.
	Delta bool
	// DeltaEdges counts the edges the batch inserted (Ingest) or retired
	// (Advance) — the wedge sources of the delta traversal.
	DeltaEdges uint64
	// Rebuilt reports that the batch fell back to a windowed epoch rebuild
	// (a non-invertible analysis met an expiry, or a metadata-revising
	// merge): the phase stats then cover the from-scratch traversal, and
	// Mutate additionally includes the snapshot build.
	Rebuilt bool
	// Mutate is the structural phase of a stream batch: ingest routing,
	// expiry bookkeeping, and (under Rebuilt) the snapshot rebuild.
	Mutate PhaseStats
}

// Survey is a reusable triangle survey over one DODGr. Construct outside a
// parallel region (handlers are registered); Run as many times as desired.
type Survey[VM, EM any] struct {
	g    *graph.DODGr[VM, EM]
	w    *ygm.World
	opts Options
	cb   Callback[VM, EM]
	plan planFilters[EM]

	hPush    ygm.HandlerID
	hPropose ygm.HandlerID
	hDecline ygm.HandlerID
	hPull    ygm.HandlerID

	state []rankState[VM, EM]
}

// reqRef locates a (p, q) wedge source on the requesting rank: the local
// vertex index of p and the adjacency position of q within Adj⁺ᵐ(p).
type reqRef struct {
	vert int32
	pos  int32
}

type pullEntry[EM any] struct {
	id  uint64
	deg uint32
	em  EM
}

type rankState[VM, EM any] struct {
	// Source side (dry run → push/pull bookkeeping).
	targVol  map[uint64]uint64   // target vertex → proposed push volume (edges)
	targReq  map[uint64][]reqRef // target vertex → local wedge sources
	declined map[uint64]bool     // target vertex → owner declined the pull

	// Target side.
	pullGrants map[int32][]int32 // local vertex index → granting source ranks
	numGrants  uint64
	// filteredAdj memoizes, per local vertex, |{o ∈ Adj⁺ᵐ : edge filter
	// passes}| — the pull-side cost a plan's edge filter leaves. Populated
	// lazily by onPropose (hubs receive up to ranks−1 proposes) and reused
	// by pullPhase. Nil unless the plan has an edge-level filter.
	filteredAdj map[int32]int32

	// Work accounting.
	triangles   uint64
	wedgeChecks uint64

	// Pushdown prune accounting (stay zero without a plan).
	prunedBatches uint64
	prunedCands   uint64
	prunedPull    uint64

	scratchTri  Triangle[VM, EM]
	scratchPull []pullEntry[EM]
	scratchKeep []int32 // surviving-candidate indices of the batch being built
}

// NewSurvey prepares a survey of g invoking cb on every triangle. cb may be
// nil for pure counting (Result.Triangles is maintained either way).
func NewSurvey[VM, EM any](g *graph.DODGr[VM, EM], opts Options, cb Callback[VM, EM]) *Survey[VM, EM] {
	// Not `== 0`: a negative (or NaN) factor would flip the dry-run pull
	// inequality and grant pulls to exactly the targets that should push,
	// silently degrading Push-Pull into nonsense grants.
	if !(opts.PullFactor > 0) {
		opts.PullFactor = 1.0
	}
	s := &Survey[VM, EM]{g: g, w: g.World(), opts: opts, cb: cb}
	s.state = make([]rankState[VM, EM], s.w.Size())
	s.hPush = s.w.RegisterHandler(s.onPush)
	s.hPropose = s.w.RegisterHandler(s.onPropose)
	s.hDecline = s.w.RegisterHandler(s.onDecline)
	s.hPull = s.w.RegisterHandler(s.onPull)
	return s
}

// NewPlannedSurvey prepares a survey restricted to plan-matching triangles,
// with the plan's predicates pushed into every communication phase (see
// Plan). A nil or empty plan degenerates to NewSurvey. The only error is an
// invalid plan (Plan.Validate).
func NewPlannedSurvey[VM, EM any](g *graph.DODGr[VM, EM], opts Options, plan *Plan[EM], cb Callback[VM, EM]) (*Survey[VM, EM], error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	s := NewSurvey(g, opts, cb)
	if plan != nil {
		s.plan = plan.compile()
	}
	return s, nil
}

// Run executes the survey collectively and returns aggregate statistics.
// It must be called outside parallel regions; it resets the world's
// communication statistics to attribute traffic per phase.
func (s *Survey[VM, EM]) Run() Result {
	for i := range s.state {
		st := &s.state[i]
		if st.targVol == nil {
			st.targVol = make(map[uint64]uint64)
			st.targReq = make(map[uint64][]reqRef)
			st.declined = make(map[uint64]bool)
			st.pullGrants = make(map[int32][]int32)
		} else {
			// Reuse the previous Run's maps: repeated surveys over the same
			// graph (ablation sweeps, stream rebuilds) were paying a fresh
			// set of map allocations per rank per run.
			clear(st.targVol)
			clear(st.targReq)
			clear(st.declined)
			clear(st.pullGrants)
		}
		st.numGrants = 0
		if st.filteredAdj != nil {
			clear(st.filteredAdj)
		}
		st.triangles = 0
		st.wedgeChecks = 0
		st.prunedBatches = 0
		st.prunedCands = 0
		st.prunedPull = 0
	}
	s.w.ResetStats()

	res := Result{Mode: s.opts.Mode, Ordering: s.g.Ordering().String(), Planned: s.plan.active}
	t0 := time.Now()
	var prev ygm.Stats

	phase := func(dst *PhaseStats, body func(r *ygm.Rank)) {
		start := time.Now()
		s.w.Parallel(body)
		dst.Duration = time.Since(start)
		now := s.w.Stats()
		d := now.Sub(prev)
		prev = now
		dst.Bytes = d.BytesSent
		dst.Messages = d.MessagesSent
		dst.Batches = d.BatchesSent
	}

	if s.opts.Mode == PushPull {
		phase(&res.DryRun, s.dryRunPhase)
	}
	phase(&res.Push, s.pushPhase)
	if s.opts.Mode == PushPull {
		phase(&res.Pull, s.pullPhase)
	}

	res.Total = time.Since(t0)
	for i := range s.state {
		res.Triangles += s.state[i].triangles
		res.PullsGranted += s.state[i].numGrants
		res.WedgeChecks += s.state[i].wedgeChecks
		res.PrunedBatches += s.state[i].prunedBatches
		res.PrunedCandidates += s.state[i].prunedCands
		res.PrunedPullEntries += s.state[i].prunedPull
		if s.state[i].wedgeChecks > res.MaxRankWedgeChecks {
			res.MaxRankWedgeChecks = s.state[i].wedgeChecks
		}
	}
	if s.w.Distributed() {
		s.reduceResult(&res)
	}
	res.AvgPullsPerRank = float64(res.PullsGranted) / float64(s.w.Size())
	if res.MaxRankWedgeChecks > 0 {
		res.WorkBalance = float64(res.WedgeChecks) / (float64(s.w.Size()) * float64(res.MaxRankWedgeChecks))
	}
	return res
}

// reduceResult folds every process's Result partials into world-wide
// totals so a multi-process run reports exactly what the equivalent
// single-process run would. Each process leader contributes its process
// partial to sum (or max) collectives; the other local ranks contribute
// zero but must participate — collectives are world-wide. Durations stay
// process-local: wall clock is machine-dependent and excluded from every
// determinism gate.
func (s *Survey[VM, EM]) reduceResult(res *Result) {
	in := *res
	var out Result
	s.w.Parallel(func(r *ygm.Rank) {
		lead := r.ID() == s.w.LeaderID()
		cu := func(v uint64) uint64 {
			if lead {
				return v
			}
			return 0
		}
		sumI := func(v int64) int64 {
			if !lead {
				v = 0
			}
			return ygm.AllReduce(r, v, func(a, b int64) int64 { return a + b })
		}
		t := in
		t.Triangles = ygm.AllReduceSum(r, cu(in.Triangles))
		t.PullsGranted = ygm.AllReduceSum(r, cu(in.PullsGranted))
		t.WedgeChecks = ygm.AllReduceSum(r, cu(in.WedgeChecks))
		t.MaxRankWedgeChecks = ygm.AllReduceMax(r, cu(in.MaxRankWedgeChecks))
		t.PrunedBatches = ygm.AllReduceSum(r, cu(in.PrunedBatches))
		t.PrunedCandidates = ygm.AllReduceSum(r, cu(in.PrunedCandidates))
		t.PrunedPullEntries = ygm.AllReduceSum(r, cu(in.PrunedPullEntries))
		for _, ph := range []*PhaseStats{&t.DryRun, &t.Push, &t.Pull} {
			ph.Bytes = sumI(ph.Bytes)
			ph.Messages = sumI(ph.Messages)
			ph.Batches = sumI(ph.Batches)
		}
		if lead {
			out = t
		}
	})
	*res = out
}

// --- Dry-run phase (§4.4, "Push vs Pull Dry-Run") ---------------------

// dryRunPhase mimics the push pass over adjacency lists without moving any
// adjacency data: it accumulates, per target vertex, the number of edges
// this rank would push, remembers where each wedge source lives (so pulls
// can be served locally later), and proposes aggregate volumes to target
// owners.
//
// Under a plan, wedges the pushdown filters would fully eliminate — the
// (p,q) edge fails the edge filter, or no suffix candidate survives the
// candidate filter — contribute no volume, are never parked, and so are
// never proposed: their true push cost is zero, and omitting them keeps
// the dry run's negotiation honest. Surviving wedges propose their
// *unfiltered* suffix length (a cheap upper bound on the materialized push
// — the survival scan early-exits at the first passing candidate, keeping
// the dry run O(out-degree) except for fully-pruned wedges).
func (s *Survey[VM, EM]) dryRunPhase(r *ygm.Rank) {
	st := &s.state[r.ID()]
	f := &s.plan
	verts := s.g.LocalVertices(r)
	for vi := range verts {
		p := &verts[vi]
		for j := 0; j+1 < len(p.Adj); j++ {
			q := &p.Adj[j]
			rest := p.Adj[j+1:]
			if f.active {
				// Fully-pruned wedges are accounted here, once: the push
				// phase skips them silently in push-pull mode.
				if !f.edge(q.EMeta) {
					st.prunedBatches++
					st.prunedCands += uint64(len(rest))
					continue
				}
				alive := false
				for k := range rest {
					if f.cand(q.EMeta, rest[k].EMeta) {
						alive = true
						break
					}
				}
				if !alive {
					st.prunedBatches++
					st.prunedCands += uint64(len(rest))
					continue
				}
			}
			st.targVol[q.Target] += uint64(len(rest))
			st.targReq[q.Target] = append(st.targReq[q.Target], reqRef{vert: int32(vi), pos: int32(j)})
		}
	}
	for q, vol := range st.targVol {
		e := r.Begin(s.g.Owner(q), s.hPropose)
		e.PutUvarint(q)
		e.PutUvarint(vol)
		e.PutUvarint(uint64(r.ID()))
		r.Commit(e)
	}
}

// onPropose runs at the target vertex's owner: grant the pull when sending
// Adj⁺ᵐ(q) once beats receiving the proposed volume, otherwise tell the
// source to push as usual. Under a plan with an edge-level filter, the
// pull side's cost is the *filtered* adjacency length — the entries a pull
// reply would actually carry.
func (s *Survey[VM, EM]) onPropose(r *ygm.Rank, d *serialize.Decoder) {
	q := d.Uvarint()
	vol := d.Uvarint()
	src := int(d.Uvarint())
	if d.Err() != nil {
		panic("core: corrupt propose message: " + d.Err().Error())
	}
	st := &s.state[r.ID()]
	v, ok := s.g.Lookup(r, q)
	if !ok {
		panic("core: propose for vertex not stored at its owner")
	}
	adjLen := len(v.Adj)
	vi := int32(-1)
	if s.plan.hasEdge {
		vi = s.g.LocalIndex(r, q)
		adjLen = s.filteredAdjLen(st, vi, v)
	}
	if float64(adjLen)*s.opts.PullFactor < float64(vol) {
		if vi < 0 {
			vi = s.g.LocalIndex(r, q)
		}
		st.pullGrants[vi] = append(st.pullGrants[vi], int32(src))
		st.numGrants++
		return
	}
	e := r.Begin(src, s.hDecline)
	e.PutUvarint(q)
	r.Commit(e)
}

// filteredAdjLen returns the edge-filtered length of v's adjacency list,
// memoized per local vertex for the duration of one Run (hubs are asked
// once per proposing rank and again by the pull phase).
func (s *Survey[VM, EM]) filteredAdjLen(st *rankState[VM, EM], vi int32, v *graph.Vertex[VM, EM]) int {
	if st.filteredAdj == nil {
		st.filteredAdj = make(map[int32]int32)
	}
	if c, ok := st.filteredAdj[vi]; ok {
		return int(c)
	}
	n := 0
	for k := range v.Adj {
		if s.plan.edge(v.Adj[k].EMeta) {
			n++
		}
	}
	st.filteredAdj[vi] = int32(n)
	return n
}

func (s *Survey[VM, EM]) onDecline(r *ygm.Rank, d *serialize.Decoder) {
	q := d.Uvarint()
	if d.Err() != nil {
		panic("core: corrupt decline message: " + d.Err().Error())
	}
	s.state[r.ID()].declined[q] = true
}

// --- Push phase (Alg. 1; §4.3) -----------------------------------------

// pushPhase streams, for every local pivot p and every q ∈ Adj⁺(p), the
// <+-suffix of Adj⁺ᵐ(p) after q to Rank(q), where onPush intersects it with
// Adj⁺ᵐ(q). In Push-Pull mode, targets granted a pull are skipped.
//
// Under a plan, the pushdown happens here: a batch whose (p,q) edge fails
// the edge filter is never enqueued, candidates failing the candidate
// filter are dropped before encoding (the surviving subsequence stays
// sorted, so onPush's merge path is untouched), and a batch whose suffix
// empties is never enqueued either.
func (s *Survey[VM, EM]) pushPhase(r *ygm.Rank) {
	st := &s.state[r.ID()]
	f := &s.plan
	pushPull := s.opts.Mode == PushPull
	emC, vmC := s.g.EdgeCodec(), s.g.VertexCodec()
	verts := s.g.LocalVertices(r)
	for vi := range verts {
		p := &verts[vi]
		for j := 0; j+1 < len(p.Adj); j++ {
			q := p.Adj[j]
			rest := p.Adj[j+1:]
			if f.active && !f.edge(q.EMeta) {
				// In push-pull mode the dry run already accounted this
				// fully-pruned wedge; count it here only when no dry run
				// ran.
				if !pushPull {
					st.prunedBatches++
					st.prunedCands += uint64(len(rest))
				}
				continue
			}
			if pushPull && !st.declined[q.Target] {
				continue // granted pull: the pull phase covers this wedge batch
			}
			// Survivors are recorded in one predicate pass: the encode loop
			// below must not re-evaluate user predicates, both for speed
			// and so an impure WhereEdge cannot desynchronize the encoded
			// entry count from the header.
			filtered := f.active // active implies hasEdge or hasPair (compile)
			keep := st.scratchKeep[:0]
			if filtered {
				for k := range rest {
					if f.cand(q.EMeta, rest[k].EMeta) {
						keep = append(keep, int32(k))
					}
				}
				st.scratchKeep = keep
				if len(keep) == 0 {
					if !pushPull {
						st.prunedBatches++
						st.prunedCands += uint64(len(rest))
					}
					continue
				}
				st.prunedCands += uint64(len(rest) - len(keep))
			}
			e := r.Begin(s.g.Owner(q.Target), s.hPush)
			e.PutUvarint(p.ID)
			vmC.Encode(e, p.Meta)
			e.PutUvarint(q.Target)
			emC.Encode(e, q.EMeta)
			// Candidate entries carry (r, d(r), meta(p,r)) but not meta(r):
			// Rank(q) already stores meta(r) for any r closing a triangle
			// (§4.3: "this extra metadata is never actually transmitted").
			// d(r) is sent as the gap from the previous candidate's — the
			// suffix is sorted by order key, so TOrd is non-decreasing and
			// the gaps are near-zero varints where absolute values (hub
			// degrees) routinely cost multiple bytes.
			prevOrd := uint32(0)
			if filtered {
				e.PutUvarint(uint64(len(keep)))
				for _, k := range keep {
					c := &rest[k]
					e.PutUvarint(c.Target)
					e.PutUvarint(uint64(c.TOrd - prevOrd))
					prevOrd = c.TOrd
					emC.Encode(e, c.EMeta)
				}
			} else {
				e.PutUvarint(uint64(len(rest)))
				for k := range rest {
					c := &rest[k]
					e.PutUvarint(c.Target)
					e.PutUvarint(uint64(c.TOrd - prevOrd))
					prevOrd = c.TOrd
					emC.Encode(e, c.EMeta)
				}
			}
			r.Commit(e)
		}
	}
}

// onPush runs at Rank(q): a streaming merge-path intersection of the
// received candidate list (sorted, a suffix of Adj⁺ᵐ(p)) against Adj⁺ᵐ(q).
// Each match is a triangle Δpqr; all six metadata items are on hand —
// meta(p), meta(p,q), meta(p,r) from the message, meta(q), meta(q,r),
// meta(r) from local storage (§4.3).
func (s *Survey[VM, EM]) onPush(r *ygm.Rank, d *serialize.Decoder) {
	st := &s.state[r.ID()]
	emC, vmC := s.g.EdgeCodec(), s.g.VertexCodec()

	pid := d.Uvarint()
	metaP := vmC.Decode(d)
	qid := d.Uvarint()
	metaPQ := emC.Decode(d)
	count := int(d.Uvarint())
	if d.Err() != nil {
		panic("core: corrupt push header: " + d.Err().Error())
	}
	q, ok := s.g.Lookup(r, qid)
	if !ok {
		panic("core: push for vertex not stored at its owner")
	}
	adj := q.Adj
	k := 0
	cdeg := uint32(0)
	for i := 0; i < count; i++ {
		cid := d.Uvarint()
		cdeg += uint32(d.Uvarint())
		metaPR := emC.Decode(d)
		if d.Err() != nil {
			panic("core: corrupt push candidate: " + d.Err().Error())
		}
		ck := graph.KeyOf(cdeg, cid)
		k = gallopOutKey(adj, k, ck)
		st.wedgeChecks++
		if k < len(adj) && adj[k].Target == cid {
			o := &adj[k]
			// With a plan, the source's checks were necessary conditions
			// only; the full predicate runs here on all three edge metas.
			if s.plan.active && !s.plan.tri(metaPQ, metaPR, o.EMeta) {
				k++
				continue
			}
			st.triangles++
			if s.cb != nil {
				t := &st.scratchTri
				t.P, t.Q, t.R = pid, qid, cid
				t.MetaP, t.MetaQ, t.MetaR = metaP, q.Meta, o.TMeta
				t.MetaPQ, t.MetaPR, t.MetaQR = metaPQ, metaPR, o.EMeta
				s.cb(r, t)
			}
			k++
		}
	}
}

// --- Pull phase (§4.4) ---------------------------------------------------

// pullPhase ships each granted Adj⁺ᵐ(q) — once per granting (q, source
// rank) pair — to the source, where onPull completes every wedge batch that
// was parked during the dry run. Target vertex metadata of pulled entries
// is not transmitted: the puller already stores meta(r) for every candidate
// r in its own Adj⁺ᵐ(p) (the same redundancy §4.3 notes for pushes).
// Under a plan with an edge-level filter, entries whose (q,r) edge cannot
// appear in any matching triangle are omitted from the reply (the filtered
// subsequence stays sorted); a reply that would carry no entries is not
// sent at all — the parked wedges at the source can close no triangle.
func (s *Survey[VM, EM]) pullPhase(r *ygm.Rank) {
	st := &s.state[r.ID()]
	f := &s.plan
	emC, vmC := s.g.EdgeCodec(), s.g.VertexCodec()
	verts := s.g.LocalVertices(r)
	for vi, srcs := range st.pullGrants {
		q := &verts[vi]
		// One predicate pass per vertex (not per reply): the survivor set
		// is identical across granting sources, and encoding from the
		// recorded indices keeps the header count and the payload in sync
		// even under an impure WhereEdge (same invariant as pushPhase).
		var keep []int32
		if f.hasEdge {
			keep = st.scratchKeep[:0]
			for k := range q.Adj {
				if f.edge(q.Adj[k].EMeta) {
					keep = append(keep, int32(k))
				}
			}
			st.scratchKeep = keep
			st.prunedPull += uint64((len(q.Adj) - len(keep)) * len(srcs))
			if len(keep) == 0 {
				continue
			}
		}
		for _, src := range srcs {
			e := r.Begin(int(src), s.hPull)
			e.PutUvarint(q.ID)
			vmC.Encode(e, q.Meta)
			// Same TOrd gap encoding as the push candidates: Adj⁺ᵐ(q) is
			// sorted by order key, so the gaps are near-zero varints.
			prevOrd := uint32(0)
			if f.hasEdge {
				e.PutUvarint(uint64(len(keep)))
				for _, k := range keep {
					o := &q.Adj[k]
					e.PutUvarint(o.Target)
					e.PutUvarint(uint64(o.TOrd - prevOrd))
					prevOrd = o.TOrd
					emC.Encode(e, o.EMeta)
				}
			} else {
				e.PutUvarint(uint64(len(q.Adj)))
				for k := range q.Adj {
					o := &q.Adj[k]
					e.PutUvarint(o.Target)
					e.PutUvarint(uint64(o.TOrd - prevOrd))
					prevOrd = o.TOrd
					emC.Encode(e, o.EMeta)
				}
			}
			r.Commit(e)
		}
	}
}

// onPull runs back at the source rank (the rank that hosts the pivots):
// intersect the pulled Adj⁺ᵐ(q) against every parked local suffix for q.
// The callback fires at Rank(p) here — metadata colocation still holds:
// meta(p), meta(p,q), meta(p,r), meta(r) are local, meta(q) and meta(q,r)
// arrive with the pull.
func (s *Survey[VM, EM]) onPull(r *ygm.Rank, d *serialize.Decoder) {
	st := &s.state[r.ID()]
	emC, vmC := s.g.EdgeCodec(), s.g.VertexCodec()

	qid := d.Uvarint()
	metaQ := vmC.Decode(d)
	count := int(d.Uvarint())
	if d.Err() != nil {
		panic("core: corrupt pull header: " + d.Err().Error())
	}
	pulled := st.scratchPull[:0]
	prevOrd := uint32(0)
	for i := 0; i < count; i++ {
		var pe pullEntry[EM]
		pe.id = d.Uvarint()
		pe.deg = prevOrd + uint32(d.Uvarint())
		prevOrd = pe.deg
		pe.em = emC.Decode(d)
		if d.Err() != nil {
			panic("core: corrupt pull entry: " + d.Err().Error())
		}
		pulled = append(pulled, pe)
	}
	st.scratchPull = pulled

	f := &s.plan
	verts := s.g.LocalVertices(r)
	for _, ref := range st.targReq[qid] {
		p := &verts[ref.vert]
		suffix := p.Adj[ref.pos+1:]
		metaPQ := p.Adj[ref.pos].EMeta
		k := 0
		for i := range suffix {
			c := &suffix[i]
			// Mirror of the push side's candidate pushdown: a filtered
			// candidate is skipped without advancing the merge cursor.
			if f.active && !f.cand(metaPQ, c.EMeta) {
				st.prunedCands++
				continue
			}
			ck := c.Key()
			k = gallopPullKey(pulled, k, ck)
			st.wedgeChecks++
			if k < len(pulled) && pulled[k].id == c.Target {
				if f.active && !f.tri(metaPQ, c.EMeta, pulled[k].em) {
					k++
					continue
				}
				st.triangles++
				if s.cb != nil {
					t := &st.scratchTri
					t.P, t.Q, t.R = p.ID, qid, c.Target
					t.MetaP, t.MetaQ, t.MetaR = p.Meta, metaQ, c.TMeta
					t.MetaPQ, t.MetaPR, t.MetaQR = metaPQ, c.EMeta, pulled[k].em
					s.cb(r, t)
				}
				k++
			}
		}
	}
}

func keyOfPull[EM any](p *pullEntry[EM]) graph.OrderKey {
	return graph.KeyOf(p.deg, p.id)
}
