package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// The zero-copy encode equivalence property: a world running the pooled
// in-place framing path (Rank.Begin/Commit writing directly into batch
// buffers) must be observationally identical to one running the
// pre-zero-copy CopyEncode reference discipline — same triangle counts,
// same wedge checks, same bytes and messages on the wire, same per-phase
// batch counts — across random graphs × PushOnly/PushPull ×
// channel/TCP transports × degree/degeneracy orderings, for both full
// surveys and incremental stream batches. Byte counts are tallied at the
// transport seam, so equal Bytes across the two disciplines means the
// encoded batches were byte-identical, not merely equivalent.

// zeroDurations strips wall-clock and batch counts from a Result so two
// runs compare on machine-independent counters only. Batch counts are
// excluded because where a flush lands (buffer threshold vs barrier poll)
// depends on goroutine scheduling in reactive handler chains — the same
// bytes can arrive split across a different number of transport batches.
// Bytes and Messages are the encode-identity contract.
func zeroDurations(res Result) Result {
	res.Total = 0
	for _, ph := range []*PhaseStats{&res.DryRun, &res.Push, &res.Pull, &res.Mutate} {
		ph.Duration = 0
		ph.Batches = 0
	}
	return res
}

func TestCopyEncodeEquivalenceProperty(t *testing.T) {
	for _, tr := range []ygm.TransportKind{ygm.TransportChannel, ygm.TransportTCP} {
		for _, ord := range []graph.Ordering{graph.OrderDegree, graph.OrderDegeneracy} {
			for _, mode := range []Mode{PushOnly, PushPull} {
				tr, ord, mode := tr, ord, mode
				t.Run(fmt.Sprintf("%v/%v/%v", tr, ord, mode), func(t *testing.T) {
					t.Parallel()
					seed := int64(100*int(tr) + 10*int(ord) + int(mode))
					wZero := ygm.MustWorld(4, ygm.Options{Transport: tr})
					defer wZero.Close()
					wCopy := ygm.MustWorld(4, ygm.Options{Transport: tr, CopyEncode: true})
					defer wCopy.Close()

					// Full survey half.
					rng := rand.New(rand.NewSource(seed))
					live := map[livePair]uint64{}
					for i := 0; i < 1200; i++ {
						u, v := uint64(rng.Intn(250)), uint64(rng.Intn(250))
						if u == v {
							continue
						}
						k := canonPair(u, v)
						if old, ok := live[k]; ok {
							live[k] = minMerge(old, uint64(i))
						} else {
							live[k] = uint64(i)
						}
					}
					gZero := buildLive(wZero, live, ord)
					gCopy := buildLive(wCopy, live, ord)
					resZero := zeroDurations(NewSurvey(gZero, Options{Mode: mode}, nil).Run())
					resCopy := zeroDurations(NewSurvey(gCopy, Options{Mode: mode}, nil).Run())
					if !reflect.DeepEqual(resZero, resCopy) {
						t.Errorf("survey results diverge between encode disciplines:\nzero-copy: %+v\ncopy:      %+v", resZero, resCopy)
					}

					// Stream half: identical batch sequences into a zero-copy
					// and a copy-encode stream, comparing every per-batch
					// Result and the final analyses.
					gsZero := buildLive(wZero, map[livePair]uint64{}, ord)
					gsCopy := buildLive(wCopy, map[livePair]uint64{}, ord)
					sZero, outZero := openTestStream(t, gsZero, mode, TemporalPlan())
					sCopy, outCopy := openTestStream(t, gsCopy, mode, TemporalPlan())
					rng = rand.New(rand.NewSource(seed + 1))
					now := uint64(0)
					for b := 0; b < 6; b++ {
						batch := make([]graph.Edge[uint64], 0, 40)
						for i := 0; i < 40; i++ {
							now++
							batch = append(batch, graph.Edge[uint64]{
								U: uint64(rng.Intn(120)), V: uint64(rng.Intn(120)), Meta: now,
							})
						}
						bZero, err := sZero.Ingest(batch)
						if err != nil {
							t.Fatalf("batch %d: zero-copy ingest: %v", b, err)
						}
						bCopy, err := sCopy.Ingest(batch)
						if err != nil {
							t.Fatalf("batch %d: copy ingest: %v", b, err)
						}
						if !reflect.DeepEqual(zeroDurations(bZero), zeroDurations(bCopy)) {
							t.Errorf("batch %d: ingest results diverge:\nzero-copy: %+v\ncopy:      %+v",
								b, zeroDurations(bZero), zeroDurations(bCopy))
						}
					}
					aZero, err := sZero.Advance(now / 2)
					if err != nil {
						t.Fatalf("zero-copy advance: %v", err)
					}
					aCopy, err := sCopy.Advance(now / 2)
					if err != nil {
						t.Fatalf("copy advance: %v", err)
					}
					if !reflect.DeepEqual(zeroDurations(aZero), zeroDurations(aCopy)) {
						t.Errorf("advance results diverge:\nzero-copy: %+v\ncopy:      %+v",
							zeroDurations(aZero), zeroDurations(aCopy))
					}
					sZero.Snapshot()
					sCopy.Snapshot()
					if sZero.Triangles() != sCopy.Triangles() {
						t.Errorf("net triangles diverge: zero-copy %d, copy %d", sZero.Triangles(), sCopy.Triangles())
					}
					if !reflect.DeepEqual(outZero, outCopy) {
						t.Errorf("stream analyses diverge between encode disciplines")
					}
				})
			}
		}
	}
}
