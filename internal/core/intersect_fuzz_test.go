package core

import (
	"sort"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// FuzzGallopIntersect drives the hybrid galloping cursors (linear prelude →
// exponential probe → binary search) and the dense-reply bitset against a
// naive sorted-merge reference over adversarial adjacency shapes: duplicate
// targets, zero gaps, tombstoned entries, cursor starts anywhere including
// past the end. The invariant under test is the one the triangle counts
// ride on: the cursor must land on the SMALLEST j >= k with adj[j] >= w —
// off by even one (the bug class: skipping the re-check after the linear
// prelude) silently drops triangles.
func FuzzGallopIntersect(f *testing.F) {
	f.Add([]byte{1, 0, 3, 0, 0, 7, 2, 255}, uint8(2), uint64(5))
	f.Add([]byte{16, 16, 16, 16, 16, 16, 16, 16, 16, 16}, uint8(0), uint64(64))
	f.Add([]byte{}, uint8(9), uint64(0))
	f.Fuzz(func(t *testing.T, gaps []byte, kByte uint8, w uint64) {
		if len(gaps) > 4096 {
			gaps = gaps[:4096]
		}
		// Sorted target list from cumulative gaps; gap 0 makes duplicates.
		ids := make([]uint64, len(gaps))
		cur := uint64(0)
		for i, b := range gaps {
			cur += uint64(b % 16)
			ids[i] = cur
		}
		adj := make([]graph.StreamEntry[serialize.Unit, uint64], len(ids))
		for i, id := range ids {
			adj[i] = graph.StreamEntry[serialize.Unit, uint64]{
				Target: id,
				EMeta:  uint64(i),
				Dead:   i%3 == 0, // tombstones keep their slot and sort normally
			}
		}
		k := int(kByte)
		if k > len(adj) {
			k = len(adj)
		}

		// Probe the fuzzed w plus every value adjacent to a list element,
		// hitting exact matches, gaps, and both ends.
		probes := []uint64{w, cur, cur + 1}
		for i := 0; i < len(ids); i += 1 + len(ids)/16 {
			probes = append(probes, ids[i])
			if ids[i] > 0 {
				probes = append(probes, ids[i]-1)
			}
		}
		for _, p := range probes {
			want := k
			for want < len(adj) && adj[want].Target < p {
				want++
			}
			if got := gallopStreamID(adj, k, p); got != want {
				t.Fatalf("gallopStreamID(k=%d, w=%d) = %d, want %d (len %d)", k, p, got, want, len(adj))
			}
		}

		// gallopOutKey over the composite (Deg, Mix64(id), id) order —
		// ties on Deg break by hash, so the list must be sorted by Key,
		// not by Target.
		out := make([]graph.OutEdge[serialize.Unit, uint64], len(ids))
		for i, id := range ids {
			out[i] = graph.OutEdge[serialize.Unit, uint64]{Target: id, TOrd: uint32(id >> 2)}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key().Less(out[j].Key()) })
		for _, p := range probes {
			ck := graph.KeyOf(uint32(p>>2), p)
			want := k
			for want < len(out) && out[want].Key().Less(ck) {
				want++
			}
			if got := gallopOutKey(out, k, ck); got != want {
				t.Fatalf("gallopOutKey(k=%d, ck=%v) = %d, want %d", k, ck, got, want)
			}
		}

		// Dense-reply bitset vs gallopStreamPullID over the deduplicated
		// list: both must agree with linear search on membership and index.
		pulled := make([]streamPullEntry[serialize.Unit, uint64], 0, len(ids))
		for i, id := range ids {
			if i > 0 && id == ids[i-1] {
				continue
			}
			pulled = append(pulled, streamPullEntry[serialize.Unit, uint64]{id: id, em: uint64(i)})
		}
		var bs idBitset
		dense := buildPullBitset(&bs, pulled)
		for _, p := range probes {
			wantIdx := -1
			for i := range pulled {
				if pulled[i].id == p {
					wantIdx = i
					break
				}
			}
			j := gallopStreamPullID(pulled, 0, p)
			gotGallop := -1
			if j < len(pulled) && pulled[j].id == p {
				gotGallop = j
			}
			if gotGallop != wantIdx {
				t.Fatalf("gallopStreamPullID(%d): got index %d, want %d", p, gotGallop, wantIdx)
			}
			if dense {
				gotBits := -1
				if idx, ok := bs.lookup(p); ok {
					gotBits = idx
				}
				if gotBits != wantIdx {
					t.Fatalf("bitset lookup(%d): got index %d, want %d", p, gotBits, wantIdx)
				}
			}
		}

		// A reply with duplicate ids must refuse the bitset: its rank
		// directory counts set bits, not list entries.
		if len(ids) >= bitsetMinCount {
			dup := make([]streamPullEntry[serialize.Unit, uint64], len(ids))
			for i, id := range ids {
				dup[i] = streamPullEntry[serialize.Unit, uint64]{id: id}
			}
			hasDup := false
			for i := 1; i < len(ids); i++ {
				if ids[i] == ids[i-1] {
					hasDup = true
					break
				}
			}
			var bs2 idBitset
			if hasDup && buildPullBitset(&bs2, dup) {
				t.Fatalf("buildPullBitset accepted a reply with duplicate ids")
			}
		}
	})
}
