// Package core implements TriPoll's primary contribution: distributed
// triangle surveys over metadata-decorated graphs (§4 of the paper). A
// survey enumerates every triangle Δpqr of the graph and applies a
// user-defined callback to the six pieces of metadata attached to the
// triangle's vertices and edges, with all metadata guaranteed to be
// colocated at the executing rank when the callback fires.
//
// Two algorithms are provided: Push-Only (Alg. 1 — vertex-centric,
// merge-path based) and Push-Pull (§4.4 — a dry-run pass negotiates, per
// (source rank, target vertex) pair, whether shipping candidate lists to
// the target ("push") or shipping the target's adjacency list to the
// source ("pull") moves fewer bytes).
//
// Surveys optionally carry a Plan: edge-metadata predicates, temporal
// δ-windows and sliding time windows compiled into per-phase filters that
// prune communication before it is enqueued (predicate pushdown). The
// dry run proposes no volume for a wedge the plan fully eliminates, the
// push phase drops filtered candidates before encoding, and pull replies
// omit adjacency entries that cannot complete a matching triangle; the
// full predicate is re-checked on the colocated metadata before every
// callback, so planned results equal post-filtered unplanned results
// exactly. DESIGN.md §7 locates each predicate class's check; the
// `pushdown` experiment measures the savings.
//
// Beyond the engine (survey.go, plan.go), the package bundles the stock
// surveys of §5 (analytics.go, temporal.go, windowed.go, edgecounts.go,
// labelindex.go): counting, clustering coefficients, closure times,
// label distributions and their plan-restricted variants.
//
// Stream (stream.go, stream_analyses.go) maintains fused analyses
// incrementally over timestamped edge batches: each batch runs a
// delta-scoped dry run/push/pull over only the changed edges, observing
// created triangles and reversing destroyed ones through invertible
// accumulators (with a windowed epoch-rebuild fallback), byte-identical
// after every batch to a from-scratch Run on the live edge set.
// DESIGN.md §9 has the design; the `stream` experiment the savings.
package core
