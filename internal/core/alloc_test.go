//go:build !race

package core

import (
	"math/rand"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// TestStreamIngestAllocBudget pins the steady-state allocation cost of a
// full incremental maintenance round: encode the batch through the pooled
// zero-copy path, run the delta survey (candidate codec, galloping
// intersections, pull replies), and mutate the adjacency in place. The
// budget has ~3.5× headroom over the measured steady state (~34 allocs for
// a 64-edge batch on 4 ranks) but sits two orders of magnitude below what
// a regression to per-message or per-candidate allocation would cost.
// Excluded under -race because race instrumentation inserts allocations.
func TestStreamIngestAllocBudget(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	bld := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		gg := bld.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	var count uint64
	st, err := OpenStream(g,
		StreamOptions[uint64]{Survey: Options{Mode: PushOnly}, MergeEdgeMeta: func(a, b uint64) uint64 {
			if a < b {
				return a
			}
			return b
		}},
		TemporalPlan(), StreamCountAnalysis[serialize.Unit, uint64]().Bind(&count))
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}

	rng := rand.New(rand.NewSource(11))
	mkBatch := func() []graph.Edge[uint64] {
		batch := make([]graph.Edge[uint64], 0, 64)
		for i := 0; i < 64; i++ {
			batch = append(batch, graph.Edge[uint64]{
				U: uint64(rng.Intn(400)), V: uint64(rng.Intn(400)), Meta: uint64(i),
			})
		}
		return batch
	}
	// Warm: grow adjacency arrays, candidate scratch, batch pools and the
	// analysis state to their steady-state high-water marks.
	for i := 0; i < 50; i++ {
		if _, err := st.Ingest(mkBatch()); err != nil {
			t.Fatalf("warm ingest %d: %v", i, err)
		}
	}

	batch := mkBatch()
	avg := testing.AllocsPerRun(200, func() {
		if _, err := st.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 120
	if avg > budget {
		t.Errorf("steady-state Ingest of a 64-edge batch: %.1f allocs/op, budget %d", avg, budget)
	}
	if st.Stats().Triangles == 0 {
		t.Fatal("stream counted no triangles; the workload did not exercise the survey path")
	}
}
