package core

import (
	"fmt"
	"strings"

	"tripoll/internal/ygm"
)

// Plan algebra for the query engine. The engine coalesces concurrently
// pending queries against the same graph into one fused traversal; to do
// that it must (a) name a plan so equal queries can share a cache entry,
// (b) form the least restrictive plan covering a set of queries (the plan
// the fused traversal pushes down), and (c) re-restrict each query to its
// own plan at the callback. Canonical, UnionPlans and WithResidual are
// those three operations. They are only defined for *declarative* plans —
// temporal windows and δ-constraints, the serializable subset a QuerySpec
// can express; opaque WhereEdge predicates cannot be compared, unioned or
// keyed, so plans carrying them report ok == false and the engine runs
// them solo.

// Canonical returns a stable textual key identifying the plan's constraint
// set, and whether the plan has one. ok is false when the plan carries
// opaque WhereEdge predicates (function values have no canonical form).
// Two plans with equal keys restrict a survey identically *provided* their
// Timestamps accessors agree — the key cannot inspect the accessor, so
// callers comparing keys across plans must use a uniform accessor (the
// engine compiles every QuerySpec with the same one).
//
// A nil or empty plan canonicalizes to the empty key: unrestricted.
func (p *Plan[EM]) Canonical() (key string, ok bool) {
	if p.IsEmpty() {
		return "", true
	}
	if len(p.edgePreds) > 0 {
		return "", false
	}
	var sb strings.Builder
	if p.hasDelta {
		fmt.Fprintf(&sb, "d%d;", p.delta)
	}
	if p.hasStart {
		fmt.Fprintf(&sb, "f%d;", p.start)
	}
	if p.hasEnd {
		fmt.Fprintf(&sb, "u%d;", p.end)
	}
	return sb.String(), true
}

// UnionPlans returns the least restrictive plan matching every triangle
// that any input plan matches: component-wise, a constraint survives only
// if every plan carries it, weakened to the loosest bound (max δ, min
// From, max Until). ok is false when any plan has opaque predicates (no
// sound union exists — predicates cannot be disjoined into a pushdown
// filter). A nil result (with ok true) means the union is unrestricted.
//
// The union is what a coalesced traversal pushes down: it prunes only
// communication no member query could need, and each member re-applies its
// own full plan as a residual (WithResidual), so member results equal solo
// runs exactly — the coalesce ≡ solo property the engine tests.
func UnionPlans[EM any](plans []*Plan[EM]) (*Plan[EM], bool) {
	out := &Plan[EM]{hasDelta: true, hasStart: true, hasEnd: true}
	first := true
	for _, p := range plans {
		if p.IsEmpty() {
			return nil, true // one member is unrestricted: so is the union
		}
		if len(p.edgePreds) > 0 {
			return nil, false
		}
		if out.timeOf == nil {
			out.timeOf = p.timeOf
		}
		if !p.hasDelta {
			out.hasDelta = false
		}
		if !p.hasStart {
			out.hasStart = false
		}
		if !p.hasEnd {
			out.hasEnd = false
		}
		if first {
			out.delta, out.start, out.end = p.delta, p.start, p.end
			first = false
			continue
		}
		if p.delta > out.delta {
			out.delta = p.delta
		}
		if p.start < out.start {
			out.start = p.start
		}
		if p.end > out.end {
			out.end = p.end
		}
	}
	if first || out.IsEmpty() {
		return nil, true
	}
	return out, true
}

// residual wraps an attached analysis so it observes only triangles
// passing keep — the per-job re-restriction a coalesced traversal applies
// when it ran under a weaker union plan than the job asked for.
type residual[VM, EM any] struct {
	inner Attached[VM, EM]
	keep  func(t *Triangle[VM, EM]) bool
}

// WithResidual returns a restricting the attached analysis to triangles
// passing keep. The engine fuses analyses with different plans into one
// traversal executed under the union plan; each analysis then sees the
// union's triangles filtered back down to its own plan, which — because
// pushed-down checks are necessary conditions only and MatchEdges is the
// full predicate — yields exactly the triangles a solo run would observe.
func WithResidual[VM, EM any](a Attached[VM, EM], keep func(t *Triangle[VM, EM]) bool) Attached[VM, EM] {
	return &residual[VM, EM]{inner: a, keep: keep}
}

func (w *residual[VM, EM]) AnalysisName() string      { return w.inner.AnalysisName() }
func (w *residual[VM, EM]) validate(nranks int) error { return w.inner.validate(nranks) }
func (w *residual[VM, EM]) start(nranks int)          { w.inner.start(nranks) }
func (w *residual[VM, EM]) reduce(r *ygm.Rank)        { w.inner.reduce(r) }
func (w *residual[VM, EM]) finish()                   { w.inner.finish() }
func (w *residual[VM, EM]) observe(r *ygm.Rank, t *Triangle[VM, EM]) {
	if w.keep(t) {
		w.inner.observe(r, t)
	}
}
