package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// DirectedCensus classifies the triangles of a directed input graph using
// the two-bit original-directionality metadata of §4: a triangle whose
// three arcs are single-direction is either cyclic (each vertex has
// exactly one outgoing arc within the triangle) or transitive; triangles
// containing a bidirectional or undirected edge are counted separately.
// This is the directed-motif census of temporal-motif work the paper
// situates itself against ([40]).
type DirectedCensus struct {
	Cyclic     uint64 // 3-cycles: p→q→r→p (up to rotation)
	Transitive uint64 // one source, one sink
	Reciprocal uint64 // at least one bidirectional edge
	Undirected uint64 // at least one edge with no direction info
}

// Total returns the number of classified triangles.
func (c DirectedCensus) Total() uint64 {
	return c.Cyclic + c.Transitive + c.Reciprocal + c.Undirected
}

// SurveyDirectedCensus runs the census over a graph built with
// graph.AddArc / graph.MergeDirected edge metadata.
func SurveyDirectedCensus[VM, EM any](g *graph.DODGr[VM, graph.Directed[EM]], opts Options) (DirectedCensus, Result) {
	w := g.World()
	per := make([]DirectedCensus, w.Size())
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[VM, graph.Directed[EM]]) {
		c := &per[r.ID()]
		dirs := [3]graph.Direction{t.MetaPQ.Dir, t.MetaPR.Dir, t.MetaQR.Dir}
		for _, d := range dirs {
			switch d {
			case graph.DirNone:
				c.Undirected++
				return
			case graph.DirBoth:
				c.Reciprocal++
				return
			}
		}
		// All single-direction: count outgoing arcs per vertex inside the
		// triangle; a directed 3-cycle gives every vertex exactly one.
		outP, outQ, outR := 0, 0, 0
		if graph.HasArc(t.MetaPQ, t.P, t.Q) {
			outP++
		} else {
			outQ++
		}
		if graph.HasArc(t.MetaPR, t.P, t.R) {
			outP++
		} else {
			outR++
		}
		if graph.HasArc(t.MetaQR, t.Q, t.R) {
			outQ++
		} else {
			outR++
		}
		if outP == 1 && outQ == 1 && outR == 1 {
			c.Cyclic++
		} else {
			c.Transitive++
		}
	})
	res := s.Run()
	var total DirectedCensus
	for _, c := range per {
		total.Cyclic += c.Cyclic
		total.Transitive += c.Transitive
		total.Reciprocal += c.Reciprocal
		total.Undirected += c.Undirected
	}
	return total, res
}
