package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// DirectedCensus classifies the triangles of a directed input graph using
// the two-bit original-directionality metadata of §4: a triangle whose
// three arcs are single-direction is either cyclic (each vertex has
// exactly one outgoing arc within the triangle) or transitive; triangles
// containing a bidirectional or undirected edge are counted separately.
// This is the directed-motif census of temporal-motif work the paper
// situates itself against ([40]).
type DirectedCensus struct {
	Cyclic     uint64 // 3-cycles: p→q→r→p (up to rotation)
	Transitive uint64 // one source, one sink
	Reciprocal uint64 // at least one bidirectional edge
	Undirected uint64 // at least one edge with no direction info
}

// Total returns the number of classified triangles.
func (c DirectedCensus) Total() uint64 {
	return c.Cyclic + c.Transitive + c.Reciprocal + c.Undirected
}

// add folds o into c.
func (c DirectedCensus) add(o DirectedCensus) DirectedCensus {
	c.Cyclic += o.Cyclic
	c.Transitive += o.Transitive
	c.Reciprocal += o.Reciprocal
	c.Undirected += o.Undirected
	return c
}

// DirectedCensusAnalysis classifies triangles of a graph built with
// graph.AddArc / graph.MergeDirected edge metadata.
func DirectedCensusAnalysis[VM, EM any]() Analysis[VM, graph.Directed[EM], DirectedCensus] {
	return Analysis[VM, graph.Directed[EM], DirectedCensus]{
		Name: "census",
		Observe: func(_ *ygm.Rank, c DirectedCensus, t *Triangle[VM, graph.Directed[EM]]) DirectedCensus {
			dirs := [3]graph.Direction{t.MetaPQ.Dir, t.MetaPR.Dir, t.MetaQR.Dir}
			for _, d := range dirs {
				switch d {
				case graph.DirNone:
					c.Undirected++
					return c
				case graph.DirBoth:
					c.Reciprocal++
					return c
				}
			}
			// All single-direction: count outgoing arcs per vertex inside the
			// triangle; a directed 3-cycle gives every vertex exactly one.
			outP, outQ, outR := 0, 0, 0
			if graph.HasArc(t.MetaPQ, t.P, t.Q) {
				outP++
			} else {
				outQ++
			}
			if graph.HasArc(t.MetaPR, t.P, t.R) {
				outP++
			} else {
				outR++
			}
			if graph.HasArc(t.MetaQR, t.Q, t.R) {
				outQ++
			} else {
				outR++
			}
			if outP == 1 && outQ == 1 && outR == 1 {
				c.Cyclic++
			} else {
				c.Transitive++
			}
			return c
		},
		Merge: DirectedCensus.add,
	}
}

// SurveyDirectedCensus runs the census over a graph built with
// graph.AddArc / graph.MergeDirected edge metadata.
//
// Deprecated: use Run with DirectedCensusAnalysis, which fuses with other
// analyses in one traversal.
func SurveyDirectedCensus[VM, EM any](g *graph.DODGr[VM, graph.Directed[EM]], opts Options) (DirectedCensus, Result) {
	var census DirectedCensus
	res := mustResult(Run(g, opts, nil, DirectedCensusAnalysis[VM, EM]().Bind(&census)))
	return census, res
}
