package core

import (
	"testing"

	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func buildTimestamped(t testing.TB, nranks int, edges []graph.TemporalEdge) (*ygm.World, *graph.DODGr[serialize.Unit, uint64]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for i, e := range edges {
			if i%r.Size() == r.ID() {
				b.AddEdge(r, e.U, e.V, e.Time)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

func TestTemporalWindowCountSmall(t *testing.T) {
	// Two triangles: one spanning 10 time units, one spanning 1000.
	edges := []graph.TemporalEdge{
		{U: 0, V: 1, Time: 100}, {U: 1, V: 2, Time: 105}, {U: 0, V: 2, Time: 110},
		{U: 5, V: 6, Time: 100}, {U: 6, V: 7, Time: 600}, {U: 5, V: 7, Time: 1100},
	}
	w, g := buildTimestamped(t, 3, edges)
	defer w.Close()
	within, total, _ := TemporalWindowCount(g, 10, Options{})
	if total != 2 || within != 1 {
		t.Errorf("delta=10: within=%d total=%d", within, total)
	}
	// The tight triangle spans exactly 10; delta 9 excludes it.
	within, _, _ = TemporalWindowCount(g, 9, Options{})
	if within != 0 {
		t.Errorf("delta=9: within=%d, want 0", within)
	}
	within, _, _ = TemporalWindowCount(g, 1000, Options{})
	if within != 2 {
		t.Errorf("delta=1000: within=%d, want 2", within)
	}
}

func TestTemporalWindowSweepMonotone(t *testing.T) {
	p := gen.DefaultRedditParams()
	p.Users = 500
	p.Events = 6000
	edges := gen.RedditLike(p)
	w, g := buildTimestamped(t, 4, edges)
	defer w.Close()
	deltas := []uint64{0, 100, 10_000, 1 << 40}
	counts, res := TemporalWindowSweep(g, deltas, Options{})
	if counts[1<<40] != res.Triangles {
		t.Errorf("unbounded window %d != total %d", counts[1<<40], res.Triangles)
	}
	// Monotone in delta.
	prev := uint64(0)
	for _, d := range deltas {
		if counts[d] < prev {
			t.Errorf("window counts not monotone: %v", counts)
		}
		prev = counts[d]
	}
	// Sweep agrees with individual windows.
	for _, d := range deltas[:3] {
		within, _, _ := TemporalWindowCount(g, d, Options{})
		if within != counts[d] {
			t.Errorf("sweep[%d] = %d, individual = %d", d, counts[d], within)
		}
	}
}
