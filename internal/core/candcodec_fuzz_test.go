package core

import (
	"errors"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// FuzzCandidateCodec exercises the delta candidate wire format from both
// directions: (a) encodeCandList → candScan round-trips every candidate's
// id, in-delta bit, and metadata exactly, and consumes exactly the bytes it
// wrote; (b) truncated encodings and arbitrary byte soup never panic — the
// scan stops with a typed error (ErrCandidateCount for an impossible
// count, the decoder's truncation error otherwise) and never fabricates a
// fully decoded section from incomplete input.
func FuzzCandidateCodec(f *testing.F) {
	f.Add([]byte{3, 0, 9, 1, 200, 4}, uint32(2), uint64(100), false, 0)
	f.Add([]byte{}, uint32(0), uint64(0), true, 0)
	f.Add([]byte{255, 255, 255, 255}, uint32(7), uint64(1), false, 3)
	f.Fuzz(func(t *testing.T, data []byte, epoch uint32, cutoff uint64, expire bool, cut int) {
		em := serialize.Uint64Codec()
		vm := serialize.UnitCodec()
		trav := travInsert
		if expire {
			trav = travExpire
		}
		timeOf := func(m uint64) uint64 { return m }

		// Half the input builds the candidate list (sorted by id via
		// cumulative gaps, duplicates allowed; epochs and metadata vary so
		// both in-delta rules get exercised), the other half seeds probes.
		if len(data) > 2048 {
			data = data[:2048]
		}
		adj := make([]graph.StreamEntry[serialize.Unit, uint64], 0, len(data)/2)
		cur := uint64(0)
		for i := 0; i+1 < len(data); i += 2 {
			cur += uint64(data[i] % 32)
			adj = append(adj, graph.StreamEntry[serialize.Unit, uint64]{
				Target: cur,
				EMeta:  uint64(data[i+1]) * 3,
				Epoch:  epoch - uint32(data[i+1]%2), // some in, some out of the delta
				Dead:   data[i+1]%5 == 0,
			})
		}
		keep := make([]int32, len(adj))
		for i := range keep {
			keep[i] = int32(i)
		}

		var e serialize.Encoder
		encodeCandList(&e, em, vm, adj, keep, trav, epoch, cutoff, timeOf)
		wire := e.Bytes()

		// (a) Round-trip: every field back, exact byte consumption.
		var d serialize.Decoder
		d.Reset(wire)
		var cs candScan[serialize.Unit, uint64]
		if !cs.open(&d, em, vm) {
			t.Fatalf("open rejected a well-formed section: %v", cs.err)
		}
		inDelta := func(c *graph.StreamEntry[serialize.Unit, uint64]) bool {
			if trav == travInsert {
				return c.Epoch == epoch
			}
			return timeOf(c.EMeta) < cutoff
		}
		got := 0
		for cs.next() {
			c := &adj[got]
			if cs.id != c.Target || cs.fresh != inDelta(c) || cs.emv != c.EMeta {
				t.Fatalf("candidate %d: decoded (id=%d fresh=%v em=%d), want (id=%d fresh=%v em=%d)",
					got, cs.id, cs.fresh, cs.emv, c.Target, inDelta(c), c.EMeta)
			}
			got++
		}
		if cs.err != nil {
			t.Fatalf("scan of a well-formed section errored after %d candidates: %v", got, cs.err)
		}
		if got != len(adj) {
			t.Fatalf("decoded %d candidates, encoded %d", got, len(adj))
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left after a full scan", d.Remaining())
		}

		// (b1) Every truncated prefix: no panic, and a full decode is
		// impossible (the section is shorter than its own declaration).
		if len(wire) > 0 {
			if cut < 0 {
				cut = -cut
			}
			prefixes := []int{cut % len(wire), 0, len(wire) / 2, len(wire) - 1}
			for _, p := range prefixes {
				var dt serialize.Decoder
				dt.Reset(wire[:p])
				var ct candScan[serialize.Unit, uint64]
				n := 0
				if ct.open(&dt, em, vm) {
					for ct.next() {
						n++
					}
				}
				if ct.err == nil && n == len(adj) && len(adj) > 0 {
					t.Fatalf("prefix %d/%d decoded all %d candidates without error", p, len(wire), len(adj))
				}
				if ct.err != nil && !errors.Is(ct.err, ErrCandidateCount) && dt.Err() == nil {
					t.Fatalf("prefix %d: scan error %v with a clean decoder", p, ct.err)
				}
			}
		}

		// (b2) The raw fuzz input as a section: must not panic; a reported
		// count that cannot fit must surface as ErrCandidateCount.
		var dr serialize.Decoder
		dr.Reset(data)
		var cr candScan[serialize.Unit, uint64]
		if cr.open(&dr, em, vm) {
			for cr.next() {
			}
		}
	})
}
