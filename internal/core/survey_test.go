package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tripoll/internal/baseline"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// buildMeta constructs a DODGr with deterministic metadata:
// meta(v) = v*3+1 and meta(u,v) = min*1e6 + max.
func buildMeta(t testing.TB, nranks int, edges [][2]uint64, opts ygm.Options) (*ygm.World, *graph.DODGr[uint64, uint64]) {
	t.Helper()
	w := ygm.MustWorld(nranks, opts)
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{})
	var g *graph.DODGr[uint64, uint64]
	w.Parallel(func(r *ygm.Rank) {
		vset := map[uint64]bool{}
		for i, e := range edges {
			vset[e[0]] = true
			vset[e[1]] = true
			if i%r.Size() != r.ID() {
				continue
			}
			lo, hi := e[0], e[1]
			if lo > hi {
				lo, hi = hi, lo
			}
			b.AddEdge(r, e[0], e[1], lo*1_000_000+hi)
		}
		for v := range vset {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, v*3+1)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

func edgeMeta(u, v uint64) uint64 {
	if u > v {
		u, v = v, u
	}
	return u*1_000_000 + v
}

var (
	k3     = [][2]uint64{{0, 1}, {1, 2}, {0, 2}}
	k4     = [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	k5     = [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}
	star   = [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	path   = [][2]uint64{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	bowtie = [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}
)

func TestCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		edges [][2]uint64
		want  uint64
	}{
		{"K3", k3, 1},
		{"K4", k4, 4},
		{"K5", k5, 10},
		{"star", star, 0},
		{"path", path, 0},
		{"bowtie", bowtie, 2},
	}
	for _, c := range cases {
		for _, mode := range []Mode{PushOnly, PushPull} {
			for _, nranks := range []int{1, 2, 4} {
				w, g := buildMeta(t, nranks, c.edges, ygm.Options{})
				res := Count(g, Options{Mode: mode})
				if res.Triangles != c.want {
					t.Errorf("%s/%v/%d ranks: count = %d, want %d", c.name, mode, nranks, res.Triangles, c.want)
				}
				w.Close()
			}
		}
	}
}

func TestCountAgainstSerialBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		nv := 20 + rng.Intn(60)
		ne := 50 + rng.Intn(400)
		edges := make([][2]uint64, ne)
		for i := range edges {
			edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
		}
		want := baseline.SerialCount(edges)
		for _, mode := range []Mode{PushOnly, PushPull} {
			w, g := buildMeta(t, 3, edges, ygm.Options{})
			res := Count(g, Options{Mode: mode})
			if res.Triangles != want {
				t.Errorf("trial %d mode %v: count = %d, want %d", trial, mode, res.Triangles, want)
			}
			w.Close()
		}
	}
}

func TestEnumerationMatchesSerialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nv, ne := 40, 300
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	want := baseline.SerialTriangles(edges)
	for _, mode := range []Mode{PushOnly, PushPull} {
		w, g := buildMeta(t, 4, edges, ygm.Options{})
		perRank := make([][][3]uint64, 4)
		s := NewSurvey(g, Options{Mode: mode}, func(r *ygm.Rank, tr *Triangle[uint64, uint64]) {
			perRank[r.ID()] = append(perRank[r.ID()], [3]uint64{tr.P, tr.Q, tr.R})
		})
		res := s.Run()
		var got [][3]uint64
		for _, s := range perRank {
			got = append(got, s...)
		}
		sort.Slice(got, func(i, j int) bool {
			a, b := got[i], got[j]
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			if a[1] != b[1] {
				return a[1] < b[1]
			}
			return a[2] < b[2]
		})
		if len(got) != len(want) {
			t.Fatalf("mode %v: %d triangles, want %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("mode %v: triangle %d = %v, want %v", mode, i, got[i], want[i])
			}
		}
		if res.Triangles != uint64(len(want)) {
			t.Errorf("mode %v: result count %d != enumerated %d", mode, res.Triangles, len(want))
		}
		w.Close()
	}
}

func TestMetadataColocationInvariant(t *testing.T) {
	// The central §4 guarantee: when the callback fires, all six metadata
	// items match the claimed vertex ids — wherever the callback runs.
	rng := rand.New(rand.NewSource(5))
	nv, ne := 30, 250
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	deg := map[uint64]uint32{}
	seen := map[[2]uint64]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]uint64{u, v}] {
			seen[[2]uint64{u, v}] = true
			deg[u]++
			deg[v]++
		}
	}
	for _, mode := range []Mode{PushOnly, PushPull} {
		w, g := buildMeta(t, 4, edges, ygm.Options{})
		s := NewSurvey(g, Options{Mode: mode}, func(r *ygm.Rank, tr *Triangle[uint64, uint64]) {
			if tr.MetaP != tr.P*3+1 || tr.MetaQ != tr.Q*3+1 || tr.MetaR != tr.R*3+1 {
				t.Errorf("mode %v: vertex metadata mismatch on Δ(%d,%d,%d): %d %d %d",
					mode, tr.P, tr.Q, tr.R, tr.MetaP, tr.MetaQ, tr.MetaR)
			}
			if tr.MetaPQ != edgeMeta(tr.P, tr.Q) || tr.MetaPR != edgeMeta(tr.P, tr.R) || tr.MetaQR != edgeMeta(tr.Q, tr.R) {
				t.Errorf("mode %v: edge metadata mismatch on Δ(%d,%d,%d)", mode, tr.P, tr.Q, tr.R)
			}
			if !graph.Less(deg[tr.P], tr.P, deg[tr.Q], tr.Q) || !graph.Less(deg[tr.Q], tr.Q, deg[tr.R], tr.R) {
				t.Errorf("mode %v: triangle (%d,%d,%d) not in <+ order", mode, tr.P, tr.Q, tr.R)
			}
		})
		s.Run()
		w.Close()
	}
}

func TestPushPullEqualsPushOnlyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 1 + rng.Intn(4)
		nv := 5 + rng.Intn(40)
		ne := rng.Intn(300)
		edges := make([][2]uint64, ne)
		for i := range edges {
			edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
		}
		want := baseline.SerialCount(edges)
		w, g := buildMeta(t, nranks, edges, ygm.Options{})
		defer w.Close()
		a := Count(g, Options{Mode: PushOnly})
		b := Count(g, Options{Mode: PushPull})
		return a.Triangles == want && b.Triangles == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPullFactorExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nv, ne := 40, 400
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	want := baseline.SerialCount(edges)
	grants := map[float64]uint64{}
	for _, pf := range []float64{1e-9, 0.5, 1.0, 2.0, 1e9} {
		w, g := buildMeta(t, 3, edges, ygm.Options{})
		res := Count(g, Options{Mode: PushPull, PullFactor: pf})
		if res.Triangles != want {
			t.Errorf("PullFactor %g: count = %d, want %d", pf, res.Triangles, want)
		}
		grants[pf] = res.PullsGranted
		w.Close()
	}
	if grants[1e-9] == 0 {
		t.Error("tiny PullFactor should grant pulls")
	}
	// Raising the factor can only make pulling less attractive. (A huge
	// factor still grants pulls for zero-out-degree targets: the paper's
	// inequality |Adj+(q)| < vol holds trivially at 0, and shipping an
	// empty list beats receiving vol candidate edges.)
	if grants[1e-9] < grants[1.0] || grants[1.0] < grants[1e9] {
		t.Errorf("grants not monotone in PullFactor: %v", grants)
	}
}

func TestPullFactorClampsNonPositive(t *testing.T) {
	// A negative factor would flip the dry-run pull inequality: every
	// target with a non-empty adjacency would satisfy |Adj+|·PF < vol and
	// grant a pull, degrading Push-Pull into nonsense grants. Non-positive
	// (and NaN) factors must clamp to the paper's 1.0 and behave
	// identically to it.
	rng := rand.New(rand.NewSource(4))
	nv, ne := 40, 400
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	want := baseline.SerialCount(edges)
	w, g := buildMeta(t, 3, edges, ygm.Options{})
	defer w.Close()
	ref := Count(g, Options{Mode: PushPull, PullFactor: 1.0})
	if ref.Triangles != want {
		t.Fatalf("reference count = %d, want %d", ref.Triangles, want)
	}
	for _, pf := range []float64{-1.0, -1e9, 0, math.NaN()} {
		res := Count(g, Options{Mode: PushPull, PullFactor: pf})
		if res.Triangles != want {
			t.Errorf("PullFactor %v: count = %d, want %d", pf, res.Triangles, want)
		}
		if res.PullsGranted != ref.PullsGranted {
			t.Errorf("PullFactor %v: grants = %d, want the clamped default's %d",
				pf, res.PullsGranted, ref.PullsGranted)
		}
	}
}

func TestSurveyOverTCPTransport(t *testing.T) {
	want := baseline.SerialCount(k5)
	w, g := buildMeta(t, 3, k5, ygm.Options{Transport: ygm.TransportTCP})
	defer w.Close()
	for _, mode := range []Mode{PushOnly, PushPull} {
		res := Count(g, Options{Mode: mode})
		if res.Triangles != want {
			t.Errorf("tcp/%v: count = %d, want %d", mode, res.Triangles, want)
		}
	}
}

func TestSurveyRerunnable(t *testing.T) {
	w, g := buildMeta(t, 2, k4, ygm.Options{})
	defer w.Close()
	s := NewSurvey(g, Options{}, nil)
	for i := 0; i < 3; i++ {
		if res := s.Run(); res.Triangles != 4 {
			t.Errorf("run %d: count = %d", i, res.Triangles)
		}
	}
}

func TestResultPhaseAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edges := make([][2]uint64, 600)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(50)), uint64(rng.Intn(50))}
	}
	w, g := buildMeta(t, 4, edges, ygm.Options{})
	defer w.Close()

	po := Count(g, Options{Mode: PushOnly})
	if po.Push.Bytes == 0 || po.Push.Messages == 0 {
		t.Errorf("push-only: empty push phase stats: %+v", po.Push)
	}
	if po.DryRun.Bytes != 0 || po.Pull.Bytes != 0 {
		t.Error("push-only must not use dry-run/pull phases")
	}
	if po.WedgeChecks == 0 {
		t.Error("no wedge checks recorded")
	}

	pp := Count(g, Options{Mode: PushPull})
	if pp.DryRun.Bytes == 0 {
		t.Error("push-pull: dry run sent no bytes")
	}
	if pp.Triangles != po.Triangles {
		t.Errorf("mode mismatch: %d vs %d", pp.Triangles, po.Triangles)
	}
	if pp.Total <= 0 || po.Total <= 0 {
		t.Error("total duration not recorded")
	}
}

func TestLocalVertexCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	edges := make([][2]uint64, 200)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(25)), uint64(rng.Intn(25))}
	}
	want := baseline.SerialLocalCounts(edges)
	w, g := buildMeta(t, 3, edges, ygm.Options{})
	defer w.Close()
	got, res := LocalVertexCounts(g, Options{})
	if res.Triangles != baseline.SerialCount(edges) {
		t.Errorf("count = %d", res.Triangles)
	}
	if len(got) != len(want) {
		t.Fatalf("local counts: %d vertices, want %d", len(got), len(want))
	}
	for v, c := range want {
		if got[v] != c {
			t.Errorf("t(%d) = %d, want %d", v, got[v], c)
		}
	}
}

func TestClusteringCoefficientsK4(t *testing.T) {
	w, g := buildMeta(t, 2, k4, ygm.Options{})
	defer w.Close()
	cs, _ := ClusteringCoefficients(g, Options{})
	if cs.Average != 1.0 {
		t.Errorf("K4 average cc = %v, want 1", cs.Average)
	}
	if cs.Global != 1.0 {
		t.Errorf("K4 transitivity = %v, want 1", cs.Global)
	}
	if cs.Triangles != 4 || cs.Wedges != 12 {
		t.Errorf("K4 stats: %+v", cs)
	}
}

func TestClusteringCoefficientsBowtie(t *testing.T) {
	w, g := buildMeta(t, 2, bowtie, ygm.Options{})
	defer w.Close()
	cs, _ := ClusteringCoefficients(g, Options{})
	// Bowtie: center vertex 2 has d=4, t=2 → cc = 2·2/(4·3) = 1/3; the four
	// outer vertices have d=2, t=1 → cc = 1. Average = (4 + 1/3)/5 = 13/15.
	want := 13.0 / 15.0
	if diff := cs.Average - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("bowtie average cc = %v, want %v", cs.Average, want)
	}
	// Transitivity: 3·2 / (C(4,2) + 4·C(2,2)) = 6/10.
	if diff := cs.Global - 0.6; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("bowtie transitivity = %v, want 0.6", cs.Global)
	}
}

func TestMaxEdgeLabelDistribution(t *testing.T) {
	// Two triangles sharing vertex 2 (bowtie). With meta(v)=v·3+1 all
	// labels are distinct, so both triangles count. Max edge label of
	// Δ(0,1,2) = edgeMeta(1,2); of Δ(2,3,4) = edgeMeta(3,4).
	w, g := buildMeta(t, 3, bowtie, ygm.Options{})
	defer w.Close()
	dist, res := MaxEdgeLabelDistribution(g, Options{})
	if res.Triangles != 2 {
		t.Fatalf("count = %d", res.Triangles)
	}
	if dist[edgeMeta(1, 2)] != 1 || dist[edgeMeta(3, 4)] != 1 {
		t.Errorf("distribution = %v", dist)
	}
}

func TestDegreeTriplesSurvey(t *testing.T) {
	// Vertex metadata = degree. K4: every vertex degree 3, ⌈log₂3⌉ = 2.
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[uint64, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			for _, e := range k4 {
				b.AddEdge(r, e[0], e[1], serialize.Unit{})
			}
			for v := uint64(0); v < 4; v++ {
				b.SetVertexMeta(r, v, 3) // d(v) in K4
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	dist, res := DegreeTriples(g, Options{})
	if res.Triangles != 4 {
		t.Fatalf("count = %d", res.Triangles)
	}
	key := DegreeTriple{First: 2, Second: 2, Third: 2}
	if dist[key] != 4 || len(dist) != 1 {
		t.Errorf("distribution = %v", dist)
	}
}

func TestClosureTimes(t *testing.T) {
	// Triangle with timestamps 10, 14, 74: t1=10 t2=14 t3=74.
	// open = ceil(log2(4)) = 2, close = ceil(log2(64)) = 6.
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			b.AddEdge(r, 0, 1, 10)
			b.AddEdge(r, 1, 2, 14)
			b.AddEdge(r, 0, 2, 74)
			// Second triangle closed instantly: all timestamps equal.
			b.AddEdge(r, 5, 6, 100)
			b.AddEdge(r, 6, 7, 100)
			b.AddEdge(r, 5, 7, 100)
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	joint, res := ClosureTimes(g, Options{})
	if res.Triangles != 2 {
		t.Fatalf("count = %d", res.Triangles)
	}
	if joint.Count(2, 6) != 1 {
		t.Errorf("expected (2,6) bucket, joint = %v", joint)
	}
	if joint.Count(-1, -1) != 1 {
		t.Errorf("expected instantaneous (-1,-1) bucket")
	}
	if joint.Total() != 2 {
		t.Errorf("joint total = %d", joint.Total())
	}
}

func TestModeString(t *testing.T) {
	if PushPull.String() != "push-pull" || PushOnly.String() != "push-only" || Mode(9).String() != "unknown-mode" {
		t.Error("Mode.String")
	}
}

func TestEmptyGraphSurvey(t *testing.T) {
	w, g := buildMeta(t, 2, [][2]uint64{{1, 2}}, ygm.Options{})
	defer w.Close()
	for _, mode := range []Mode{PushOnly, PushPull} {
		if res := Count(g, Options{Mode: mode}); res.Triangles != 0 {
			t.Errorf("single edge graph: %d triangles", res.Triangles)
		}
	}
}
