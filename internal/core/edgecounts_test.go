package core

import (
	"math/rand"
	"testing"

	"tripoll/internal/baseline"
	"tripoll/internal/ygm"
)

func TestCanonEdge(t *testing.T) {
	if CanonEdge(5, 2) != (EdgeKey{First: 2, Second: 5}) {
		t.Error("CanonEdge not canonical")
	}
	if CanonEdge(2, 5) != CanonEdge(5, 2) {
		t.Error("CanonEdge not symmetric")
	}
}

func TestLocalEdgeCountsAgainstSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	edges := make([][2]uint64, 300)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(30)), uint64(rng.Intn(30))}
	}
	// Serial reference: count triangles through each canonical edge.
	want := map[EdgeKey]uint64{}
	for _, tri := range baseline.SerialTriangles(edges) {
		want[CanonEdge(tri[0], tri[1])]++
		want[CanonEdge(tri[0], tri[2])]++
		want[CanonEdge(tri[1], tri[2])]++
	}
	for _, mode := range []Mode{PushOnly, PushPull} {
		w, g := buildMeta(t, 3, edges, ygm.Options{})
		got, res := LocalEdgeCounts(g, Options{Mode: mode})
		if res.Triangles != baseline.SerialCount(edges) {
			t.Errorf("mode %v: triangles = %d", mode, res.Triangles)
		}
		if len(got) != len(want) {
			t.Fatalf("mode %v: %d edges with counts, want %d", mode, len(got), len(want))
		}
		for e, c := range want {
			if got[e] != c {
				t.Errorf("mode %v: edge %v count %d, want %d", mode, e, got[e], c)
			}
		}
		// Consistency: Σ edge counts = 3·|T|.
		var sum uint64
		for _, c := range got {
			sum += c
		}
		if sum != 3*res.Triangles {
			t.Errorf("mode %v: Σ edge counts %d != 3·%d", mode, sum, res.Triangles)
		}
		w.Close()
	}
}

func TestLocalEdgeCountsK4(t *testing.T) {
	w, g := buildMeta(t, 2, k4, ygm.Options{})
	defer w.Close()
	got, _ := LocalEdgeCounts(g, Options{})
	// Every K4 edge supports exactly 2 triangles.
	if len(got) != 6 {
		t.Fatalf("edges = %d", len(got))
	}
	for e, c := range got {
		if c != 2 {
			t.Errorf("edge %v count %d, want 2", e, c)
		}
	}
}
