package core

import "errors"

// Plan is a survey plan: a declarative description of which triangles a
// survey cares about, compiled into per-phase filters that prune
// communication *before* it leaves the rank. Without a plan, every wedge
// batch of Alg. 1 crosses the transport and the callback sees every
// triangle; with a plan, the push phase never enqueues a wedge whose
// already-known metadata violates a predicate, the dry run never proposes
// volume for it, and pull replies omit adjacency entries that cannot
// complete a surviving triangle. The survey's result is *identical* to
// running unplanned and re-applying MatchEdges in the callback — pushed-
// down checks are necessary conditions only; the full predicate is always
// re-evaluated on the six colocated metadata items before the callback
// fires (property-tested in pushdown_test.go).
//
// Three predicate classes compose (all AND-ed):
//
//   - edge-metadata predicates (WhereEdge): a triangle qualifies only if
//     all three of its edges satisfy every predicate. Checkable per edge,
//     so it prunes in every phase, on both the push and pull sides.
//   - sliding time windows (From/Until/Window): every edge timestamp must
//     lie in [start, end]. A per-edge check once Timestamps provides the
//     accessor.
//   - temporal δ-windows (CloseWithin): the triangle's three timestamps
//     must span at most δ (t3 − t1 ≤ δ). Checkable per wedge — the source
//     rank knows meta(p,q) and meta(p,r) before enqueueing — which is what
//     makes δ-windowed surveys communication reductions rather than
//     post-hoc filters.
//
// A Plan is built fluently and is not safe for concurrent mutation; it is
// compiled (snapshotted) when a survey is constructed, so mutating it
// afterwards does not affect running surveys.
type Plan[EM any] struct {
	edgePreds []func(EM) bool
	timeOf    func(EM) uint64
	hasDelta  bool
	delta     uint64
	hasStart  bool
	start     uint64
	hasEnd    bool
	end       uint64
}

// NewPlan returns an empty plan (no constraints: every triangle matches).
func NewPlan[EM any]() *Plan[EM] { return &Plan[EM]{} }

// TemporalPlan returns a plan for uint64-timestamp edge metadata with the
// identity Timestamps accessor already installed — the common configuration
// of BuildTemporal graphs and every windowed stock survey.
func TemporalPlan() *Plan[uint64] {
	return NewPlan[uint64]().Timestamps(func(t uint64) uint64 { return t })
}

// WhereEdge adds an edge-metadata predicate; a triangle qualifies only if
// all three edges satisfy it. Multiple calls AND-compose.
func (p *Plan[EM]) WhereEdge(pred func(EM) bool) *Plan[EM] {
	p.edgePreds = append(p.edgePreds, pred)
	return p
}

// Timestamps installs the accessor that extracts a timestamp from edge
// metadata, enabling the temporal constraints. The last call wins.
func (p *Plan[EM]) Timestamps(timeOf func(EM) uint64) *Plan[EM] {
	p.timeOf = timeOf
	return p
}

// CloseWithin keeps only triangles whose three edge timestamps span at
// most delta: t3 − t1 ≤ delta. delta = 0 keeps triangles whose timestamps
// are all equal. Requires Timestamps.
func (p *Plan[EM]) CloseWithin(delta uint64) *Plan[EM] {
	p.hasDelta = true
	p.delta = delta
	return p
}

// From keeps only triangles all of whose edge timestamps are ≥ start
// (an open-ended sliding window). Requires Timestamps.
func (p *Plan[EM]) From(start uint64) *Plan[EM] {
	p.hasStart = true
	p.start = start
	return p
}

// Until keeps only triangles all of whose edge timestamps are ≤ end
// (an open-ended sliding window). Requires Timestamps.
func (p *Plan[EM]) Until(end uint64) *Plan[EM] {
	p.hasEnd = true
	p.end = end
	return p
}

// Window is From(start) and Until(end) in one call: the closed interval
// [start, end]. start > end is a legal empty window that matches nothing —
// and therefore sends (almost) nothing.
func (p *Plan[EM]) Window(start, end uint64) *Plan[EM] {
	return p.From(start).Until(end)
}

// IsEmpty reports whether the plan carries no constraints at all.
func (p *Plan[EM]) IsEmpty() bool {
	return p == nil || (len(p.edgePreds) == 0 && !p.hasDelta && !p.hasStart && !p.hasEnd)
}

// ErrNoTimestamps is returned by Validate when a temporal constraint
// (CloseWithin/From/Until/Window) is set without a Timestamps accessor.
var ErrNoTimestamps = errors.New("core: plan has a temporal constraint but no Timestamps accessor (use TemporalPlan or Plan.Timestamps)")

// Validate reports whether the plan is well-formed. The only way to build
// an invalid plan is a temporal constraint without a Timestamps accessor.
func (p *Plan[EM]) Validate() error {
	if p == nil {
		return nil
	}
	if (p.hasDelta || p.hasStart || p.hasEnd) && p.timeOf == nil {
		return ErrNoTimestamps
	}
	return nil
}

// edgeOK is the single-edge necessary condition: every WhereEdge predicate
// plus the sliding window on the edge's own timestamp.
func (p *Plan[EM]) edgeOK(em EM) bool {
	for _, pred := range p.edgePreds {
		if !pred(em) {
			return false
		}
	}
	if p.timeOf != nil && (p.hasStart || p.hasEnd) {
		t := p.timeOf(em)
		if p.hasStart && t < p.start {
			return false
		}
		if p.hasEnd && t > p.end {
			return false
		}
	}
	return true
}

// pairOK is the two-edge necessary condition: two of the triangle's three
// timestamps already span more than δ, so no third can shrink the spread.
func (p *Plan[EM]) pairOK(a, b EM) bool {
	if !p.hasDelta {
		return true
	}
	ta, tb := p.timeOf(a), p.timeOf(b)
	if ta > tb {
		ta, tb = tb, ta
	}
	return tb-ta <= p.delta
}

// MatchEdges is the full triangle predicate over the three edge metadata
// items — exactly what a callback-side post-filter would evaluate. The
// engine applies it before every callback invocation, so pushdown and
// post-filtering agree triangle-for-triangle.
func (p *Plan[EM]) MatchEdges(pq, pr, qr EM) bool {
	if p == nil {
		return true
	}
	if !p.edgeOK(pq) || !p.edgeOK(pr) || !p.edgeOK(qr) {
		return false
	}
	if p.hasDelta {
		t1, _, t3 := sort3(p.timeOf(pq), p.timeOf(pr), p.timeOf(qr))
		if t3-t1 > p.delta {
			return false
		}
	}
	return true
}

// planFilters is the compiled form a Survey holds: a snapshot of the plan
// with per-phase triviality flags so the unplanned fast paths stay intact.
type planFilters[EM any] struct {
	// active is false for surveys without a plan (or with an empty one);
	// every filter hook is skipped entirely. active implies hasEdge or
	// hasPair: every plan constraint sets one of them.
	active bool
	// hasEdge marks a non-trivial single-edge filter (predicates and/or a
	// sliding window); hasPair marks an active δ-window. A pure-δ plan has
	// hasEdge == false, so adjacency scans that only help edge-level
	// pruning are skipped.
	hasEdge bool
	hasPair bool
	plan    Plan[EM] // value copy: later mutation of the source plan is invisible
}

// compile snapshots the plan. Call Validate first; compile assumes a
// well-formed plan.
func (p *Plan[EM]) compile() planFilters[EM] {
	if p.IsEmpty() {
		return planFilters[EM]{}
	}
	return planFilters[EM]{
		active:  true,
		hasEdge: len(p.edgePreds) > 0 || p.hasStart || p.hasEnd,
		hasPair: p.hasDelta,
		plan:    *p,
	}
}

// edge applies the single-edge filter (trivially true when inactive).
func (f *planFilters[EM]) edge(em EM) bool {
	return !f.hasEdge || f.plan.edgeOK(em)
}

// cand applies the candidate filter for a wedge (p,q,r) whose two source-
// known edges are pq and pr: edge-level on pr, pair-level on (pq, pr).
func (f *planFilters[EM]) cand(pq, pr EM) bool {
	if f.hasEdge && !f.plan.edgeOK(pr) {
		return false
	}
	if f.hasPair && !f.plan.pairOK(pq, pr) {
		return false
	}
	return true
}

// tri is the full residual predicate applied before the callback.
func (f *planFilters[EM]) tri(pq, pr, qr EM) bool {
	return f.plan.MatchEdges(pq, pr, qr)
}
