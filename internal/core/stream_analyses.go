package core

import (
	"fmt"

	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// Streaming analyses. A StreamAnalysis is an Analysis plus the two hooks
// incremental maintenance needs: Unobserve reverses one Observe (declared
// only by invertible accumulators — without it, every expiry falls back to
// a windowed epoch rebuild), and Clone deep-copies an accumulator so
// Snapshot can reduce and finalize without disturbing the live per-rank
// state the next batch keeps folding into.
//
// Two contracts beyond the Analysis ones:
//
//   - Observe/Unobserve must be presentation-independent: a stream
//     enumerates triangles with vertices in id order, while a full
//     traversal presents them in <+ order, and the two must accumulate
//     identically (every stock analysis is symmetric in the three
//     vertices, so this is the natural shape).
//   - Per-rank accumulators form a group under Observe/Unobserve/Merge: a
//     triangle may be retired on a different rank than the one that
//     observed it, so a rank-local value may transiently hold an inverse
//     (a wrapped counter, a zero-valued map entry). Only the merged
//     accumulator is meaningful; Finalize is where cancelled residue is
//     pruned (see the stock constructors).
type StreamAnalysis[VM, EM, T any] struct {
	Analysis[VM, EM, T]
	// Unobserve reverses Observe for one triangle: after Unobserve(r, acc,
	// t) for every previously observed t, the merged accumulator must be
	// indistinguishable from one that never saw them. Nil marks the
	// analysis non-invertible: correct, but every expiry triggers an epoch
	// rebuild.
	Unobserve func(r *ygm.Rank, acc T, t *Triangle[VM, EM]) T
	// Clone deep-copies an accumulator. Required when NewAccum is set
	// (reference-typed accumulators); nil declares value semantics (plain
	// assignment copies).
	Clone func(T) T
}

// Bind attaches the stream analysis to an output destination, producing
// the handle OpenStream consumes. Unlike Analysis.Bind handles, a stream
// handle is long-lived: every Snapshot re-publishes the current result
// into *out.
func (a StreamAnalysis[VM, EM, T]) Bind(out *T) StreamAttached[VM, EM] {
	return &streamBound[VM, EM, T]{a: a, out: out}
}

// StreamAttached is a StreamAnalysis bound to its output, ready for
// OpenStream. Only StreamAnalysis.Bind produces values of this type.
type StreamAttached[VM, EM any] interface {
	// AnalysisName returns the bound analysis's Name.
	AnalysisName() string

	validateStream(nranks int) error
	start(nranks int) // fresh accumulators (OpenStream and epoch rebuilds)
	observeSigned(r *ygm.Rank, t *Triangle[VM, EM], sign int)
	invertible() bool
	prepare() // clone live accumulators for a snapshot reduction
	reduceClones(r *ygm.Rank)
	finishClones() // finalize the reduced clone into *out
}

type streamBound[VM, EM, T any] struct {
	a      StreamAnalysis[VM, EM, T]
	out    *T
	accs   []T // live per-rank accumulators, owned across batches
	clones []T // scratch for Snapshot reductions
}

func (b *streamBound[VM, EM, T]) AnalysisName() string { return b.a.Name }

func (b *streamBound[VM, EM, T]) validateStream(nranks int) error {
	if b.a.Observe == nil {
		return fmt.Errorf("core: stream analysis %q has no Observe", b.a.Name)
	}
	if nranks > 1 && b.a.Merge == nil {
		return fmt.Errorf("core: stream analysis %q has no Merge (required on a %d-rank world)", b.a.Name, nranks)
	}
	if b.a.NewAccum != nil && b.a.Clone == nil {
		return fmt.Errorf("core: stream analysis %q has NewAccum but no Clone (snapshots must not disturb live accumulators)", b.a.Name)
	}
	return nil
}

func (b *streamBound[VM, EM, T]) start(nranks int) {
	b.accs = make([]T, nranks)
	if b.a.NewAccum != nil {
		for i := range b.accs {
			b.accs[i] = b.a.NewAccum()
		}
	}
}

func (b *streamBound[VM, EM, T]) observeSigned(r *ygm.Rank, t *Triangle[VM, EM], sign int) {
	id := r.ID()
	if sign >= 0 {
		b.accs[id] = b.a.Observe(r, b.accs[id], t)
	} else {
		b.accs[id] = b.a.Unobserve(r, b.accs[id], t)
	}
}

func (b *streamBound[VM, EM, T]) invertible() bool { return b.a.Unobserve != nil }

func (b *streamBound[VM, EM, T]) prepare() {
	b.clones = make([]T, len(b.accs))
	for i := range b.accs {
		if b.a.Clone != nil {
			b.clones[i] = b.a.Clone(b.accs[i])
		} else {
			b.clones[i] = b.accs[i]
		}
	}
}

// reduceClones tree-reduces the snapshot clones exactly like bound.reduce
// (fixed pairing, ygm.Rendezvous between levels), leaving the combined
// accumulator in clones[0]. The live accumulators are untouched.
func (b *streamBound[VM, EM, T]) reduceClones(r *ygm.Rank) {
	n := len(b.clones)
	for stride := 1; stride < n; stride *= 2 {
		if stride > 1 {
			ygm.Rendezvous(r)
		}
		i := r.ID()
		if i%(2*stride) == 0 && i+stride < n {
			b.clones[i] = b.a.Merge(b.clones[i], b.clones[i+stride])
		}
	}
}

func (b *streamBound[VM, EM, T]) finishClones() {
	acc := b.clones[0]
	if b.a.Finalize != nil {
		acc = b.a.Finalize(acc)
	}
	*b.out = acc
	b.clones = nil
}

// --- Stock invertible analyses ------------------------------------------

// pruneZeroCounts deletes cancelled (zero-valued) keys a merged streaming
// accumulator may carry when observe and unobserve landed on different
// ranks; a fresh traversal's accumulator never holds zeros, so pruning
// makes the two deeply equal.
func pruneZeroCounts[K comparable](m map[K]uint64) map[K]uint64 {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	return m
}

func cloneCounts[K comparable](m map[K]uint64) map[K]uint64 {
	c := make(map[K]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// decCount reverses one increment of m[k] with wrapping arithmetic,
// deleting exact zeros (see the group contract on StreamAnalysis).
func decCount[K comparable](m map[K]uint64, k K) {
	if c := m[k] - 1; c == 0 {
		delete(m, k)
	} else {
		m[k] = c
	}
}

// StreamCountAnalysis is CountAnalysis with the obvious inverse.
func StreamCountAnalysis[VM, EM any]() StreamAnalysis[VM, EM, uint64] {
	return StreamAnalysis[VM, EM, uint64]{
		Analysis: CountAnalysis[VM, EM](),
		Unobserve: func(_ *ygm.Rank, acc uint64, _ *Triangle[VM, EM]) uint64 {
			return acc - 1 // wrapping: per-rank values may dip "negative"
		},
	}
}

// StreamVertexCountAnalysis is VertexCountAnalysis with per-vertex
// decrements as the inverse; Finalize prunes cancelled vertices.
func StreamVertexCountAnalysis[VM, EM any]() StreamAnalysis[VM, EM, map[uint64]uint64] {
	a := VertexCountAnalysis[VM, EM]()
	a.Finalize = pruneZeroCounts[uint64]
	return StreamAnalysis[VM, EM, map[uint64]uint64]{
		Analysis: a,
		Unobserve: func(_ *ygm.Rank, acc map[uint64]uint64, t *Triangle[VM, EM]) map[uint64]uint64 {
			decCount(acc, t.P)
			decCount(acc, t.Q)
			decCount(acc, t.R)
			return acc
		},
		Clone: cloneCounts[uint64],
	}
}

// StreamClosureTimeAnalysis is ClosureTimeAnalysis with bucket decrements
// as the inverse; Finalize prunes cancelled cells.
func StreamClosureTimeAnalysis[VM any]() StreamAnalysis[VM, uint64, *stats.Joint2D] {
	a := ClosureTimeAnalysis[VM]()
	a.Finalize = (*stats.Joint2D).Prune
	return StreamAnalysis[VM, uint64, *stats.Joint2D]{
		Analysis: a,
		Unobserve: func(_ *ygm.Rank, acc *stats.Joint2D, t *Triangle[VM, uint64]) *stats.Joint2D {
			t1, t2, t3 := sort3(t.MetaPQ, t.MetaPR, t.MetaQR)
			acc.Sub(int(stats.CeilLog2(t2-t1)), int(stats.CeilLog2(t3-t1)), 1)
			return acc
		},
		Clone: (*stats.Joint2D).Clone,
	}
}

// StreamMaxEdgeLabelAnalysis is MaxEdgeLabelAnalysis with label decrements
// as the inverse; Finalize prunes cancelled labels.
func StreamMaxEdgeLabelAnalysis[VM comparable](distinctLabels bool) StreamAnalysis[VM, uint64, map[uint64]uint64] {
	a := MaxEdgeLabelAnalysis[VM](distinctLabels)
	a.Finalize = pruneZeroCounts[uint64]
	return StreamAnalysis[VM, uint64, map[uint64]uint64]{
		Analysis: a,
		Unobserve: func(_ *ygm.Rank, acc map[uint64]uint64, t *Triangle[VM, uint64]) map[uint64]uint64 {
			if distinctLabels && (t.MetaP == t.MetaQ || t.MetaQ == t.MetaR || t.MetaP == t.MetaR) {
				return acc
			}
			max := t.MetaPQ
			if t.MetaPR > max {
				max = t.MetaPR
			}
			if t.MetaQR > max {
				max = t.MetaQR
			}
			decCount(acc, max)
			return acc
		},
		Clone: cloneCounts[uint64],
	}
}
