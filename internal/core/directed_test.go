package core

import (
	"math/rand"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func buildDirected(t testing.TB, nranks int, arcs [][2]uint64) (*ygm.World, *graph.DODGr[serialize.Unit, graph.Directed[serialize.Unit]]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := graph.NewBuilder(w, serialize.UnitCodec(), graph.DirectedCodec(serialize.UnitCodec()),
		graph.BuilderOptions[graph.Directed[serialize.Unit]]{
			MergeEdgeMeta: graph.MergeDirected[serialize.Unit](nil),
		})
	var g *graph.DODGr[serialize.Unit, graph.Directed[serialize.Unit]]
	w.Parallel(func(r *ygm.Rank) {
		for i, a := range arcs {
			if i%r.Size() == r.ID() {
				graph.AddArc(b, r, a[0], a[1], serialize.Unit{})
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

func TestDirectedCensusCycle(t *testing.T) {
	w, g := buildDirected(t, 2, [][2]uint64{{0, 1}, {1, 2}, {2, 0}})
	defer w.Close()
	c, res := SurveyDirectedCensus(g, Options{})
	if res.Triangles != 1 || c.Cyclic != 1 || c.Total() != 1 {
		t.Errorf("cycle census = %+v (triangles %d)", c, res.Triangles)
	}
}

func TestDirectedCensusTransitiveTournament(t *testing.T) {
	// Transitive tournament on 5 vertices (i→j for i<j): C(5,3) = 10
	// triangles, all transitive, none cyclic.
	var arcs [][2]uint64
	for i := uint64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			arcs = append(arcs, [2]uint64{i, j})
		}
	}
	w, g := buildDirected(t, 3, arcs)
	defer w.Close()
	c, res := SurveyDirectedCensus(g, Options{})
	if res.Triangles != 10 || c.Transitive != 10 || c.Cyclic != 0 {
		t.Errorf("tournament census = %+v (triangles %d)", c, res.Triangles)
	}
}

func TestDirectedCensusReciprocal(t *testing.T) {
	// Triangle with one bidirectional edge.
	w, g := buildDirected(t, 2, [][2]uint64{{0, 1}, {1, 0}, {1, 2}, {2, 0}})
	defer w.Close()
	c, _ := SurveyDirectedCensus(g, Options{})
	if c.Reciprocal != 1 || c.Total() != 1 {
		t.Errorf("reciprocal census = %+v", c)
	}
}

func TestDirectedCensusRandomTournamentInvariant(t *testing.T) {
	// In any tournament, cyclic + transitive = C(n,3), and the number of
	// cyclic triangles equals C(n,3) − Σ_v C(outdeg(v), 2).
	rng := rand.New(rand.NewSource(8))
	const n = 12
	var arcs [][2]uint64
	out := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 0 {
				arcs = append(arcs, [2]uint64{i, j})
				out[i]++
			} else {
				arcs = append(arcs, [2]uint64{j, i})
				out[j]++
			}
		}
	}
	total := uint64(n * (n - 1) * (n - 2) / 6)
	var transWant uint64
	for _, d := range out {
		transWant += d * (d - 1) / 2
	}
	for _, mode := range []Mode{PushOnly, PushPull} {
		w, g := buildDirected(t, 4, arcs)
		c, res := SurveyDirectedCensus(g, Options{Mode: mode})
		if res.Triangles != total {
			t.Errorf("mode %v: triangles = %d, want %d", mode, res.Triangles, total)
		}
		if c.Transitive != transWant || c.Cyclic != total-transWant {
			t.Errorf("mode %v: census = %+v, want trans %d cyclic %d", mode, c, transWant, total-transWant)
		}
		w.Close()
	}
}
