package core

import (
	"errors"
	"testing"

	"tripoll/internal/ygm"
)

// Plan compilation unit tests: the window/δ edge cases the docs promise
// (empty window, δ = 0, open-ended windows), predicate composition, and
// validation of temporal constraints without a timestamp accessor.

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan[uint64]
		want error
	}{
		{"nil", nil, nil},
		{"empty", NewPlan[uint64](), nil},
		{"delta-no-time", NewPlan[uint64]().CloseWithin(5), ErrNoTimestamps},
		{"from-no-time", NewPlan[uint64]().From(5), ErrNoTimestamps},
		{"until-no-time", NewPlan[uint64]().Until(5), ErrNoTimestamps},
		{"window-no-time", NewPlan[uint64]().Window(1, 5), ErrNoTimestamps},
		{"delta-with-time", TemporalPlan().CloseWithin(5), nil},
		{"window-with-time", TemporalPlan().Window(1, 5), nil},
		{"pred-only", NewPlan[uint64]().WhereEdge(func(uint64) bool { return true }), nil},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate() = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestPlanMatchEdges(t *testing.T) {
	cases := []struct {
		name       string
		plan       *Plan[uint64]
		pq, pr, qr uint64
		want       bool
	}{
		{"empty-plan", NewPlan[uint64](), 1, 2, 3, true},
		{"nil-plan", nil, 1, 2, 3, true},
		{"delta-pass", TemporalPlan().CloseWithin(10), 5, 10, 15, true},
		{"delta-fail", TemporalPlan().CloseWithin(9), 5, 10, 15, false},
		{"delta-zero-pass", TemporalPlan().CloseWithin(0), 7, 7, 7, true},
		{"delta-zero-fail", TemporalPlan().CloseWithin(0), 7, 7, 8, false},
		{"window-pass", TemporalPlan().Window(5, 15), 5, 10, 15, true},
		{"window-fail-low", TemporalPlan().Window(6, 15), 5, 10, 15, false},
		{"window-fail-high", TemporalPlan().Window(5, 14), 5, 10, 15, false},
		{"window-empty", TemporalPlan().Window(10, 5), 7, 7, 7, false},
		{"from-open-ended", TemporalPlan().From(10), 10, 20, 1 << 60, true},
		{"from-fail", TemporalPlan().From(10), 9, 20, 30, false},
		{"until-open-ended", TemporalPlan().Until(30), 0, 20, 30, true},
		{"until-fail", TemporalPlan().Until(29), 0, 20, 30, false},
		{"pred-pass", NewPlan[uint64]().WhereEdge(func(em uint64) bool { return em%2 == 0 }), 2, 4, 6, true},
		{"pred-fail-one-edge", NewPlan[uint64]().WhereEdge(func(em uint64) bool { return em%2 == 0 }), 2, 4, 7, false},
		{"preds-and-compose",
			NewPlan[uint64]().
				WhereEdge(func(em uint64) bool { return em%2 == 0 }).
				WhereEdge(func(em uint64) bool { return em < 100 }),
			2, 4, 102, false},
		{"pred-plus-delta",
			TemporalPlan().WhereEdge(func(em uint64) bool { return em > 0 }).CloseWithin(10),
			1, 5, 11, true},
	}
	for _, c := range cases {
		if got := c.plan.MatchEdges(c.pq, c.pr, c.qr); got != c.want {
			t.Errorf("%s: MatchEdges(%d,%d,%d) = %v, want %v", c.name, c.pq, c.pr, c.qr, got, c.want)
		}
	}
}

func TestPlanIsEmptyAndCompile(t *testing.T) {
	var nilPlan *Plan[uint64]
	if !nilPlan.IsEmpty() {
		t.Error("nil plan should be empty")
	}
	if !NewPlan[uint64]().IsEmpty() {
		t.Error("fresh plan should be empty")
	}
	// A Timestamps accessor alone imposes no constraint.
	if !TemporalPlan().IsEmpty() {
		t.Error("TemporalPlan with no constraints should be empty")
	}
	if f := TemporalPlan().compile(); f.active {
		t.Error("empty plan must compile inactive")
	}
	f := TemporalPlan().CloseWithin(3).compile()
	if !f.active || f.hasEdge || !f.hasPair {
		t.Errorf("pure-δ plan compiled wrong: active=%v hasEdge=%v hasPair=%v", f.active, f.hasEdge, f.hasPair)
	}
	f = TemporalPlan().Window(1, 2).compile()
	if !f.active || !f.hasEdge || f.hasPair {
		t.Errorf("window plan compiled wrong: active=%v hasEdge=%v hasPair=%v", f.active, f.hasEdge, f.hasPair)
	}
}

func TestNewPlannedSurveyRejectsInvalidPlan(t *testing.T) {
	w, g := buildMeta(t, 2, k3, ygm.Options{})
	defer w.Close()
	if _, err := NewPlannedSurvey(g, Options{}, NewPlan[uint64]().CloseWithin(1), nil); !errors.Is(err, ErrNoTimestamps) {
		t.Errorf("NewPlannedSurvey(invalid plan) err = %v, want ErrNoTimestamps", err)
	}
	// nil and empty plans degenerate to unplanned surveys.
	s, err := NewPlannedSurvey[uint64, uint64](g, Options{}, nil, nil)
	if err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if res := s.Run(); res.Planned || res.Triangles != 1 {
		t.Errorf("nil plan: Planned=%v Triangles=%d, want unplanned count 1", res.Planned, res.Triangles)
	}
	s, err = NewPlannedSurvey(g, Options{}, NewPlan[uint64](), nil)
	if err != nil {
		t.Fatalf("empty plan: %v", err)
	}
	if res := s.Run(); res.Planned || res.Triangles != 1 {
		t.Errorf("empty plan: Planned=%v Triangles=%d, want unplanned count 1", res.Planned, res.Triangles)
	}
}

// TestEmptyWindowSendsNothing: a window with start > end matches nothing,
// and pushdown means the survey also *sends* (nearly) nothing — zero
// push-phase messages, every batch pruned at the source.
func TestEmptyWindowSendsNothing(t *testing.T) {
	for _, mode := range []Mode{PushOnly, PushPull} {
		w, g := buildMeta(t, 3, k5, ygm.Options{})
		res, err := WindowedCount(g, TemporalPlan().Window(10, 5), Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Triangles != 0 {
			t.Errorf("mode %v: empty window counted %d triangles", mode, res.Triangles)
		}
		if !res.Planned {
			t.Errorf("mode %v: Planned not set", mode)
		}
		if res.DryRun.Messages != 0 || res.Push.Messages != 0 || res.Pull.Messages != 0 {
			t.Errorf("mode %v: empty window still sent messages: dry=%d push=%d pull=%d",
				mode, res.DryRun.Messages, res.Push.Messages, res.Pull.Messages)
		}
		if res.PrunedBatches == 0 {
			t.Errorf("mode %v: no pruned batches recorded", mode)
		}
		if res.WedgeChecks != 0 {
			t.Errorf("mode %v: empty window still performed %d wedge checks", mode, res.WedgeChecks)
		}
		w.Close()
	}
}

// TestDeltaZeroKeepsSimultaneousTriangles: δ = 0 keeps exactly the
// triangles whose three timestamps are equal.
func TestDeltaZeroKeepsSimultaneousTriangles(t *testing.T) {
	// Two disjoint K3s: one with all-equal timestamps, one without.
	edges := [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {10, 11}, {11, 12}, {10, 12}}
	times := map[[2]uint64]uint64{
		{0, 1}: 50, {1, 2}: 50, {0, 2}: 50,
		{10, 11}: 50, {11, 12}: 50, {10, 12}: 51,
	}
	for _, mode := range []Mode{PushOnly, PushPull} {
		w := ygm.MustWorld(3, ygm.Options{})
		g := buildWithTimes(t, w, edges, func(lo, hi uint64) uint64 { return times[[2]uint64{lo, hi}] })
		res, err := WindowedCount(g, TemporalPlan().CloseWithin(0), Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Triangles != 1 {
			t.Errorf("mode %v: δ=0 counted %d triangles, want 1", mode, res.Triangles)
		}
		w.Close()
	}
}
