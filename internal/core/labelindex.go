package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Labeled triangle indexing (Reza et al. [45], cited in §1/§5.3): for
// interactive labeled pattern matching it pays to precompute, per edge,
// how many triangles close over that edge with each vertex label. A query
// like "triangles on (u,v) whose third vertex is labeled X" then reads one
// counter instead of intersecting adjacency lists.

// LabelIndexKey identifies one (edge, third-vertex-label) bucket.
type LabelIndexKey[VM comparable] struct {
	Edge  EdgeKey
	Label VM
}

// LabelIndex is the gathered index: counts per (edge, closing label).
type LabelIndex[VM comparable] map[LabelIndexKey[VM]]uint64

// Query returns the number of triangles over {u, v} whose third vertex
// carries label.
func (ix LabelIndex[VM]) Query(u, v uint64, label VM) uint64 {
	return ix[LabelIndexKey[VM]{Edge: CanonEdge(u, v), Label: label}]
}

// LabelIndexAnalysis builds the labeled triangle index: per-edge counts of
// triangles closing with each vertex label. VM is the vertex label type.
// Accumulators are rank-local, so no label codec is needed — labels never
// cross the transport.
func LabelIndexAnalysis[VM comparable, EM any]() Analysis[VM, EM, LabelIndex[VM]] {
	return Analysis[VM, EM, LabelIndex[VM]]{
		Name:     "labelindex",
		NewAccum: func() LabelIndex[VM] { return make(LabelIndex[VM]) },
		Observe: func(_ *ygm.Rank, acc LabelIndex[VM], t *Triangle[VM, EM]) LabelIndex[VM] {
			acc[LabelIndexKey[VM]{Edge: CanonEdge(t.P, t.Q), Label: t.MetaR}]++
			acc[LabelIndexKey[VM]{Edge: CanonEdge(t.P, t.R), Label: t.MetaQ}]++
			acc[LabelIndexKey[VM]{Edge: CanonEdge(t.Q, t.R), Label: t.MetaP}]++
			return acc
		},
		Merge: func(a, b LabelIndex[VM]) LabelIndex[VM] {
			for k, v := range b {
				a[k] += v
			}
			return a
		},
	}
}

// BuildLabelIndex surveys the graph once, producing the labeled triangle
// index. labelCodec is unused now that accumulation is rank-local; the
// parameter is retained for source compatibility.
//
// Deprecated: use Run with LabelIndexAnalysis, which fuses with other
// analyses in one traversal and needs no codec.
func BuildLabelIndex[VM comparable, EM any](g *graph.DODGr[VM, EM], opts Options, labelCodec serialize.Codec[VM]) (LabelIndex[VM], Result) {
	_ = labelCodec
	var ix LabelIndex[VM]
	res := mustResult(Run(g, opts, nil, LabelIndexAnalysis[VM, EM]().Bind(&ix)))
	return ix, res
}
