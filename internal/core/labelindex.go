package core

import (
	"tripoll/internal/container"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Labeled triangle indexing (Reza et al. [45], cited in §1/§5.3): for
// interactive labeled pattern matching it pays to precompute, per edge,
// how many triangles close over that edge with each vertex label. A query
// like "triangles on (u,v) whose third vertex is labeled X" then reads one
// counter instead of intersecting adjacency lists.

// LabelIndexKey identifies one (edge, third-vertex-label) bucket.
type LabelIndexKey[VM comparable] struct {
	Edge  EdgeKey
	Label VM
}

// LabelIndex is the gathered index: counts per (edge, closing label).
type LabelIndex[VM comparable] map[LabelIndexKey[VM]]uint64

// Query returns the number of triangles over {u, v} whose third vertex
// carries label.
func (ix LabelIndex[VM]) Query(u, v uint64, label VM) uint64 {
	return ix[LabelIndexKey[VM]{Edge: CanonEdge(u, v), Label: label}]
}

// BuildLabelIndex surveys the graph once, producing the labeled triangle
// index. VM is the vertex label type.
func BuildLabelIndex[VM comparable, EM any](g *graph.DODGr[VM, EM], opts Options, labelCodec serialize.Codec[VM]) (LabelIndex[VM], Result) {
	w := g.World()
	keyCodec := serialize.Codec[LabelIndexKey[VM]]{
		Encode: func(e *serialize.Encoder, k LabelIndexKey[VM]) {
			e.PutUvarint(k.Edge.First)
			e.PutUvarint(k.Edge.Second)
			labelCodec.Encode(e, k.Label)
		},
		Decode: func(d *serialize.Decoder) LabelIndexKey[VM] {
			return LabelIndexKey[VM]{
				Edge:  EdgeKey{First: d.Uvarint(), Second: d.Uvarint()},
				Label: labelCodec.Decode(d),
			}
		},
	}
	counter := container.NewCounter[LabelIndexKey[VM]](w, keyCodec, container.CounterOptions{})
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[VM, EM]) {
		counter.Inc(r, LabelIndexKey[VM]{Edge: CanonEdge(t.P, t.Q), Label: t.MetaR})
		counter.Inc(r, LabelIndexKey[VM]{Edge: CanonEdge(t.P, t.R), Label: t.MetaQ})
		counter.Inc(r, LabelIndexKey[VM]{Edge: CanonEdge(t.Q, t.R), Label: t.MetaP})
	})
	res := s.Run()
	var ix LabelIndex[VM]
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			ix = m
		}
	})
	return ix, res
}
