package core

import (
	"math/rand"
	"sort"
	"testing"

	"tripoll/internal/container"
	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// The pushdown equivalence property: a planned survey produces exactly the
// triangles (with exactly the metadata) of an unplanned survey post-
// filtered through Plan.MatchEdges — across ordering strategies, both
// transports and both algorithms — while never sending more than the
// unplanned survey does.

// buildWithTimes constructs a DODGr whose edge metadata is a timestamp
// computed by tf from the canonical (lo, hi) endpoints — deterministic, so
// identical across orderings, transports and rank counts — and vertex
// metadata v*3+1.
func buildWithTimes(t testing.TB, w *ygm.World, edges [][2]uint64, tf func(lo, hi uint64) uint64) *graph.DODGr[uint64, uint64] {
	t.Helper()
	return buildWithTimesOrdered(t, w, edges, tf, graph.OrderDegree)
}

func buildWithTimesOrdered(t testing.TB, w *ygm.World, edges [][2]uint64, tf func(lo, hi uint64) uint64, ord graph.Ordering) *graph.DODGr[uint64, uint64] {
	t.Helper()
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.Uint64Codec(),
		graph.BuilderOptions[uint64]{Ordering: ord})
	var g *graph.DODGr[uint64, uint64]
	w.Parallel(func(r *ygm.Rank) {
		vset := map[uint64]bool{}
		for i, e := range edges {
			vset[e[0]] = true
			vset[e[1]] = true
			if i%r.Size() != r.ID() {
				continue
			}
			lo, hi := e[0], e[1]
			if lo > hi {
				lo, hi = hi, lo
			}
			b.AddEdge(r, e[0], e[1], tf(lo, hi))
		}
		for v := range vset {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, v*3+1)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return g
}

// hashTime spreads timestamps pseudo-randomly but deterministically over
// [0, 1000).
func hashTime(lo, hi uint64) uint64 {
	x := lo*0x9E3779B97F4A7C15 + hi*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return x % 1000
}

// triRec is one enumerated triangle with its full metadata.
type triRec struct {
	p, q, r       uint64
	mp, mq, mr    uint64
	mpq, mpr, mqr uint64
}

func sortTris(ts []triRec) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.p != b.p {
			return a.p < b.p
		}
		if a.q != b.q {
			return a.q < b.q
		}
		return a.r < b.r
	})
}

func collect(s *Survey[uint64, uint64], nranks int, keep func(*Triangle[uint64, uint64]) bool) ([]triRec, Result) {
	perRank := make([][]triRec, nranks)
	s.cb = func(r *ygm.Rank, t *Triangle[uint64, uint64]) {
		if keep != nil && !keep(t) {
			return
		}
		perRank[r.ID()] = append(perRank[r.ID()], triRec{
			p: t.P, q: t.Q, r: t.R,
			mp: t.MetaP, mq: t.MetaQ, mr: t.MetaR,
			mpq: t.MetaPQ, mpr: t.MetaPR, mqr: t.MetaQR,
		})
	}
	res := s.Run()
	var out []triRec
	for _, rs := range perRank {
		out = append(out, rs...)
	}
	sortTris(out)
	return out, res
}

func totalMsgs(res Result) int64 {
	return res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
}

func totalBytes(res Result) int64 {
	return res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
}

func TestPushdownEquivalentToPostFilter(t *testing.T) {
	plans := []struct {
		name string
		mk   func() *Plan[uint64]
	}{
		{"delta", func() *Plan[uint64] { return TemporalPlan().CloseWithin(120) }},
		{"window", func() *Plan[uint64] { return TemporalPlan().Window(200, 800) }},
		{"delta+window", func() *Plan[uint64] { return TemporalPlan().CloseWithin(250).Window(100, 900) }},
		{"from-open", func() *Plan[uint64] { return TemporalPlan().From(500) }},
		{"edgepred", func() *Plan[uint64] {
			return NewPlan[uint64]().WhereEdge(func(em uint64) bool { return em%3 != 0 })
		}},
		{"edgepred+delta", func() *Plan[uint64] {
			return TemporalPlan().WhereEdge(func(em uint64) bool { return em%2 == 0 }).CloseWithin(300)
		}},
		{"empty-window", func() *Plan[uint64] { return TemporalPlan().Window(900, 100) }},
		{"delta-zero", func() *Plan[uint64] { return TemporalPlan().CloseWithin(0) }},
	}
	type combo struct {
		ord       graph.Ordering
		transport ygm.TransportKind
	}
	combos := []combo{
		{graph.OrderDegree, ygm.TransportChannel},
		{graph.OrderDegeneracy, ygm.TransportChannel},
		{graph.OrderDegree, ygm.TransportTCP},
		{graph.OrderDegeneracy, ygm.TransportTCP},
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		nv := 20 + rng.Intn(40)
		ne := 100 + rng.Intn(300)
		edges := make([][2]uint64, ne)
		for i := range edges {
			edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
		}
		nranks := 2 + rng.Intn(3)
		for ci, c := range combos {
			if c.transport == ygm.TransportTCP && trial != 0 {
				continue // TCP is slow; one trial covers the transport axis
			}
			w := ygm.MustWorld(nranks, ygm.Options{Transport: c.transport})
			g := buildWithTimesOrdered(t, w, edges, hashTime, c.ord)
			for _, mode := range []Mode{PushOnly, PushPull} {
				for _, pc := range plans {
					plan := pc.mk()
					base := NewSurvey(g, Options{Mode: mode}, nil)
					want, baseRes := collect(base, nranks, func(tr *Triangle[uint64, uint64]) bool {
						return plan.MatchEdges(tr.MetaPQ, tr.MetaPR, tr.MetaQR)
					})
					planned, err := NewPlannedSurvey(g, Options{Mode: mode}, plan, nil)
					if err != nil {
						t.Fatalf("plan %s: %v", pc.name, err)
					}
					got, gotRes := collect(planned, nranks, nil)
					name := func() string {
						return "trial " + string(rune('0'+trial)) + " combo " + string(rune('0'+ci)) +
							" " + mode.String() + " plan " + pc.name
					}
					if len(got) != len(want) {
						t.Fatalf("%s: %d triangles, post-filter wants %d", name(), len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s: triangle %d = %+v, want %+v", name(), i, got[i], want[i])
						}
					}
					if gotRes.Triangles != uint64(len(want)) {
						t.Errorf("%s: Result.Triangles = %d, enumerated %d", name(), gotRes.Triangles, len(want))
					}
					if !gotRes.Planned {
						t.Errorf("%s: Planned not set", name())
					}
					// Pushdown only ever removes wedge checks and, in
					// push-only mode, messages and bytes (every planned
					// batch is a filtered subset of an unplanned one).
					if gotRes.WedgeChecks > baseRes.WedgeChecks {
						t.Errorf("%s: pushdown did MORE wedge checks: %d > %d",
							name(), gotRes.WedgeChecks, baseRes.WedgeChecks)
					}
					if mode == PushOnly {
						if totalMsgs(gotRes) > totalMsgs(baseRes) {
							t.Errorf("%s: pushdown sent MORE messages: %d > %d",
								name(), totalMsgs(gotRes), totalMsgs(baseRes))
						}
						if totalBytes(gotRes) > totalBytes(baseRes) {
							t.Errorf("%s: pushdown sent MORE bytes: %d > %d",
								name(), totalBytes(gotRes), totalBytes(baseRes))
						}
					}
				}
			}
			w.Close()
		}
	}
}

// TestWindowedClosureTimesByteIdentical: the δ-windowed closure survey's
// rendered artifact is byte-for-byte the artifact of the unplanned survey
// post-filtered in the callback, on a Reddit-like temporal stream.
func TestWindowedClosureTimesByteIdentical(t *testing.T) {
	p := gen.DefaultRedditParams()
	p.Users = 2_000
	p.Events = 12_000
	stream := gen.RedditLike(p)
	for _, mode := range []Mode{PushOnly, PushPull} {
		w := ygm.MustWorld(4, ygm.Options{})
		b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{
			MergeEdgeMeta: func(a, c uint64) uint64 {
				if a < c {
					return a
				}
				return c
			},
		})
		var g *graph.DODGr[serialize.Unit, uint64]
		w.Parallel(func(r *ygm.Rank) {
			for i := r.ID(); i < len(stream); i += r.Size() {
				b.AddEdge(r, stream[i].U, stream[i].V, stream[i].Time)
			}
			gg := b.Build(r)
			if r.ID() == 0 {
				g = gg
			}
		})

		plan := TemporalPlan().CloseWithin(1 << 10)
		joint, res, err := WindowedClosureTimes(g, plan, Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}

		// Post-filter baseline: the unplanned survey feeding the same
		// counter, keeping only MatchEdges triangles.
		codec := serialize.PairCodec(serialize.Int64Codec(), serialize.Int64Codec())
		counter := container.NewCounter[TimePair](w, codec, container.CounterOptions{})
		s := NewSurvey(g, Options{Mode: mode}, func(r *ygm.Rank, tr *Triangle[serialize.Unit, uint64]) {
			if !plan.MatchEdges(tr.MetaPQ, tr.MetaPR, tr.MetaQR) {
				return
			}
			t1, t2, t3 := sort3(tr.MetaPQ, tr.MetaPR, tr.MetaQR)
			counter.Inc(r, TimePair{First: int64(stats.CeilLog2(t2 - t1)), Second: int64(stats.CeilLog2(t3 - t1))})
		})
		baseRes := s.Run()
		ref := stats.NewJoint2D()
		w.Parallel(func(r *ygm.Rank) {
			counter.Barrier(r)
			m := counter.Gather(r)
			if r.ID() == 0 {
				for k, c := range m {
					ref.Add(int(k.First), int(k.Second), c)
				}
			}
		})

		gotOut := joint.Render("closure", "open", "close")
		refOut := ref.Render("closure", "open", "close")
		if gotOut != refOut {
			t.Errorf("mode %v: windowed artifact differs from post-filtered artifact:\n%s\nvs\n%s", mode, gotOut, refOut)
		}
		if res.Triangles >= baseRes.Triangles {
			t.Errorf("mode %v: window did not restrict: %d >= %d", mode, res.Triangles, baseRes.Triangles)
		}
		if totalBytes(res) >= totalBytes(baseRes) {
			t.Errorf("mode %v: pushdown moved no fewer bytes: %d >= %d", mode, totalBytes(res), totalBytes(baseRes))
		}
		w.Close()
	}
}

// TestWindowedMaxEdgeLabelEquivalence: the label-filtered variant equals
// the unplanned distribution restricted to matching triangles.
func TestWindowedMaxEdgeLabelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nv, ne := 40, 400
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	g := buildWithTimes(t, w, edges, hashTime) // metadata doubles as a label here
	keep := func(em uint64) bool { return em%5 != 0 }
	plan := NewPlan[uint64]().WhereEdge(keep)

	got, res, err := WindowedMaxEdgeLabelDistribution(g, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MaxEdgeLabelDistribution(g, Options{})
	// Rebuild the expectation by re-surveying with a post-filter callback.
	refCounter := map[uint64]uint64{}
	per := make([]map[uint64]uint64, 3)
	for i := range per {
		per[i] = map[uint64]uint64{}
	}
	s := NewSurvey(g, Options{}, func(r *ygm.Rank, tr *Triangle[uint64, uint64]) {
		if !plan.MatchEdges(tr.MetaPQ, tr.MetaPR, tr.MetaQR) {
			return
		}
		if tr.MetaP == tr.MetaQ || tr.MetaQ == tr.MetaR || tr.MetaP == tr.MetaR {
			return
		}
		max := tr.MetaPQ
		if tr.MetaPR > max {
			max = tr.MetaPR
		}
		if tr.MetaQR > max {
			max = tr.MetaQR
		}
		per[r.ID()][max]++
	})
	s.Run()
	for _, m := range per {
		for k, v := range m {
			refCounter[k] += v
		}
	}
	if len(got) != len(refCounter) {
		t.Fatalf("distribution sizes differ: %d vs %d (unfiltered %d)", len(got), len(refCounter), len(want))
	}
	for k, v := range refCounter {
		if got[k] != v {
			t.Errorf("label %d: %d, want %d", k, got[k], v)
		}
	}
	if res.PrunedBatches == 0 && res.PrunedCandidates == 0 {
		t.Error("label filter pruned nothing — pushdown inactive?")
	}
}
