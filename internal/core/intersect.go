package core

import (
	"math/bits"

	"tripoll/internal/graph"
)

// Sorted-list intersection primitives for the survey and stream hot paths.
//
// The merge cursors in onPush/onPull used to advance linearly: fine when the
// two lists are the same length, quadratic in feel when a short pushed
// suffix is intersected against a hub's adjacency (the cursor crawls over
// thousands of entries per candidate). Galloping — a bounded linear probe,
// then exponential search, then binary search over the probed range — costs
// O(log gap) per advance; the linear prelude keeps the balanced-list case
// (cursors advancing a step or two) at exactly the old loop's cost instead
// of paying the exponential machinery's constant factor on every step.
//
// The functions are monomorphized per call-site element type instead of
// taking a comparison closure: these run per candidate per message, and a
// captured-variable closure would put one allocation on every message.

// gallopOutKey returns the smallest j >= k with !(adj[j].Key() < ck);
// adj must be sorted by Key (the DODGr adjacency invariant).
func gallopOutKey[VM, EM any](adj []graph.OutEdge[VM, EM], k int, ck graph.OrderKey) int {
	for n := 0; n < gallopLinearSteps; n++ {
		if k >= len(adj) || !adj[k].Key().Less(ck) {
			return k
		}
		k++
	}
	// Re-establish adj[k] < ck before probing: the binary search below
	// excludes k from its range.
	if k >= len(adj) || !adj[k].Key().Less(ck) {
		return k
	}
	step := 1
	for k+step < len(adj) && adj[k+step].Key().Less(ck) {
		k += step
		step <<= 1
	}
	lo, hi := k+1, k+step
	if hi > len(adj) {
		hi = len(adj)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid].Key().Less(ck) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopPullKey is gallopOutKey over a decoded survey pull reply.
func gallopPullKey[EM any](xs []pullEntry[EM], k int, ck graph.OrderKey) int {
	for n := 0; n < gallopLinearSteps; n++ {
		if k >= len(xs) || !keyOfPull(&xs[k]).Less(ck) {
			return k
		}
		k++
	}
	if k >= len(xs) || !keyOfPull(&xs[k]).Less(ck) {
		return k
	}
	step := 1
	for k+step < len(xs) && keyOfPull(&xs[k+step]).Less(ck) {
		k += step
		step <<= 1
	}
	lo, hi := k+1, k+step
	if hi > len(xs) {
		hi = len(xs)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyOfPull(&xs[mid]).Less(ck) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopStreamID returns the smallest j >= k with adj[j].Target >= w; adj
// must be sorted by Target (the stream shard invariant; tombstones keep
// their slot and sort normally).
func gallopStreamID[VM, EM any](adj []graph.StreamEntry[VM, EM], k int, w uint64) int {
	for n := 0; n < gallopLinearSteps; n++ {
		if k >= len(adj) || adj[k].Target >= w {
			return k
		}
		k++
	}
	if k >= len(adj) || adj[k].Target >= w {
		return k
	}
	step := 1
	for k+step < len(adj) && adj[k+step].Target < w {
		k += step
		step <<= 1
	}
	lo, hi := k+1, k+step
	if hi > len(adj) {
		hi = len(adj)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid].Target < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopStreamPullID is gallopStreamID over a decoded stream pull reply.
func gallopStreamPullID[VM, EM any](xs []streamPullEntry[VM, EM], k int, w uint64) int {
	for n := 0; n < gallopLinearSteps; n++ {
		if k >= len(xs) || xs[k].id >= w {
			return k
		}
		k++
	}
	if k >= len(xs) || xs[k].id >= w {
		return k
	}
	step := 1
	for k+step < len(xs) && xs[k+step].id < w {
		k += step
		step <<= 1
	}
	lo, hi := k+1, k+step
	if hi > len(xs) {
		hi = len(xs)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid].id < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// idBitset answers "is id present, and at which list index" in O(1): a bit
// per id in [base, last] plus a per-word popcount rank directory, so lookup
// is one word test and one OnesCount64. A stream pull reply is intersected
// against *every* parked delta edge targeting the pulled vertex, which is
// what amortizes the O(span/64 + count) build; per-message intersections
// (onPush) stick with galloping.
//
// The density threshold for building one is bitsetMinCount ids spanning at
// most bitsetSpanFactor× their count: below that the words are mostly empty
// and galloping's O(log gap) wins on cache footprint alone.
type idBitset struct {
	base  uint64
	last  uint64
	words []uint64
	rank  []int32
}

const (
	bitsetMinCount   = 32
	bitsetSpanFactor = 128
)

// gallopLinearSteps is how far a gallop cursor walks linearly before
// switching to exponential probing. Merge-path advances are usually 1-2
// entries; below this distance plain stepping beats the probe/bisect
// machinery's extra comparisons.
const gallopLinearSteps = 4

// buildPullBitset populates b from the (id-sorted) pull reply when it is
// dense enough to be worth it, reusing b's storage across messages. It
// reports whether b is usable.
func buildPullBitset[VM, EM any](b *idBitset, pulled []streamPullEntry[VM, EM]) bool {
	n := len(pulled)
	if n < bitsetMinCount {
		return false
	}
	base, last := pulled[0].id, pulled[n-1].id
	span := last - base + 1
	if span > uint64(bitsetSpanFactor)*uint64(n) {
		return false
	}
	nw := int((span + 63) / 64)
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
		b.rank = make([]int32, nw)
	}
	b.words = b.words[:nw]
	b.rank = b.rank[:nw]
	clear(b.words)
	for i := range pulled {
		if i > 0 && pulled[i].id == pulled[i-1].id {
			// A duplicate id would desynchronize the rank directory from
			// list indices. Production replies hold unique targets; refuse
			// rather than misindex if one ever doesn't.
			return false
		}
		off := pulled[i].id - base
		b.words[off>>6] |= 1 << (off & 63)
	}
	var r int32
	for i, w := range b.words {
		b.rank[i] = r
		r += int32(bits.OnesCount64(w))
	}
	b.base, b.last = base, last
	return true
}

// lookup returns the list index of w and whether it is present.
func (b *idBitset) lookup(w uint64) (int, bool) {
	if w < b.base || w > b.last {
		return 0, false
	}
	off := w - b.base
	word := b.words[off>>6]
	bit := uint64(1) << (off & 63)
	if word&bit == 0 {
		return 0, false
	}
	return int(b.rank[off>>6]) + bits.OnesCount64(word&(bit-1)), true
}
