package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// buildMetaOrdered is buildMeta with an explicit ordering strategy.
func buildMetaOrdered(t testing.TB, nranks int, edges [][2]uint64, ord graph.Ordering) (*ygm.World, *graph.DODGr[uint64, uint64]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.Uint64Codec(),
		graph.BuilderOptions[uint64]{Ordering: ord})
	var g *graph.DODGr[uint64, uint64]
	w.Parallel(func(r *ygm.Rank) {
		vset := map[uint64]bool{}
		for i, e := range edges {
			vset[e[0]] = true
			vset[e[1]] = true
			if i%r.Size() != r.ID() {
				continue
			}
			b.AddEdge(r, e[0], e[1], edgeMeta(e[0], e[1]))
		}
		for v := range vset {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, v*3+1)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

// canonicalTriangles surveys g and returns every triangle as a canonical
// string — sorted vertex ids plus all six metadata items keyed by position —
// so surveys over differently ordered graphs are comparable.
func canonicalTriangles(t testing.TB, g *graph.DODGr[uint64, uint64], mode Mode) []string {
	t.Helper()
	var mu sync.Mutex
	var out []string
	s := NewSurvey(g, Options{Mode: mode}, func(r *ygm.Rank, tri *Triangle[uint64, uint64]) {
		type vm struct {
			id   uint64
			meta uint64
		}
		vs := []vm{{tri.P, tri.MetaP}, {tri.Q, tri.MetaQ}, {tri.R, tri.MetaR}}
		sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
		// Edge metas re-keyed by the sorted endpoint pair via the known
		// deterministic edge metadata, checked against what arrived.
		ems := map[[2]uint64]uint64{
			sortPair(tri.P, tri.Q): tri.MetaPQ,
			sortPair(tri.P, tri.R): tri.MetaPR,
			sortPair(tri.Q, tri.R): tri.MetaQR,
		}
		line := fmt.Sprintf("%d/%d %d/%d %d/%d e:%d,%d,%d",
			vs[0].id, vs[0].meta, vs[1].id, vs[1].meta, vs[2].id, vs[2].meta,
			ems[sortPair(vs[0].id, vs[1].id)], ems[sortPair(vs[0].id, vs[2].id)], ems[sortPair(vs[1].id, vs[2].id)])
		mu.Lock()
		out = append(out, line)
		mu.Unlock()
	})
	res := s.Run()
	if uint64(len(out)) != res.Triangles {
		t.Errorf("callback fired %d times but Result.Triangles = %d", len(out), res.Triangles)
	}
	sort.Strings(out)
	return out
}

func sortPair(a, b uint64) [2]uint64 {
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}

// TestOrderingsProduceIdenticalSurveys is the ordering layer's end-to-end
// property: the set of triangles (including all six metadata items) is
// independent of the vertex order that oriented the graph, for both survey
// algorithms.
func TestOrderingsProduceIdenticalSurveys(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 1 + rng.Intn(4)
		nv := 3 + rng.Intn(30)
		ne := rng.Intn(140)
		edges := make([][2]uint64, 0, ne)
		for i := 0; i < ne; i++ {
			edges = append(edges, [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))})
		}
		for _, mode := range []Mode{PushOnly, PushPull} {
			wDeg, gDeg := buildMetaOrdered(t, nranks, edges, graph.OrderDegree)
			wantTris := canonicalTriangles(t, gDeg, mode)
			wDeg.Close()
			wDgn, gDgn := buildMetaOrdered(t, nranks, edges, graph.OrderDegeneracy)
			gotTris := canonicalTriangles(t, gDgn, mode)
			wDgn.Close()
			if len(wantTris) != len(gotTris) {
				t.Logf("seed %d mode %v: %d vs %d triangles", seed, mode, len(wantTris), len(gotTris))
				return false
			}
			for i := range wantTris {
				if wantTris[i] != gotTris[i] {
					t.Logf("seed %d mode %v: triangle %d differs:\n  degree:     %s\n  degeneracy: %s",
						seed, mode, i, wantTris[i], gotTris[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestResultRecordsOrdering checks the threading of the ordering name into
// survey results.
func TestResultRecordsOrdering(t *testing.T) {
	edges := [][2]uint64{{0, 1}, {1, 2}, {0, 2}}
	wDeg, gDeg := buildMetaOrdered(t, 2, edges, graph.OrderDegree)
	defer wDeg.Close()
	if res := Count(gDeg, Options{}); res.Ordering != "degree" {
		t.Errorf("Result.Ordering = %q, want degree", res.Ordering)
	}
	wDgn, gDgn := buildMetaOrdered(t, 2, edges, graph.OrderDegeneracy)
	defer wDgn.Close()
	if res := Count(gDgn, Options{}); res.Ordering != "degeneracy" {
		t.Errorf("Result.Ordering = %q, want degeneracy", res.Ordering)
	}
}
