package core

import (
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// EdgeKey canonically names an undirected edge (smaller endpoint first).
type EdgeKey = serialize.Pair[uint64, uint64]

// CanonEdge returns the canonical key for {u, v}.
func CanonEdge(u, v uint64) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey{First: u, Second: v}
}

// EdgeCountAnalysis accumulates per-edge triangle participation counts —
// the quantity truss decomposition consumes (§5.3: "distributed versions of
// computing truss decompositions, where counts of triangles are desired at
// edges"), keyed by canonical edge.
func EdgeCountAnalysis[VM, EM any]() Analysis[VM, EM, map[EdgeKey]uint64] {
	return Analysis[VM, EM, map[EdgeKey]uint64]{
		Name:     "edgecounts",
		NewAccum: func() map[EdgeKey]uint64 { return make(map[EdgeKey]uint64) },
		Observe: func(_ *ygm.Rank, acc map[EdgeKey]uint64, t *Triangle[VM, EM]) map[EdgeKey]uint64 {
			acc[CanonEdge(t.P, t.Q)]++
			acc[CanonEdge(t.P, t.R)]++
			acc[CanonEdge(t.Q, t.R)]++
			return acc
		},
		Merge: mergeCounts[EdgeKey],
	}
}

// LocalEdgeCounts computes per-edge triangle participation counts.
//
// Deprecated: use Run with EdgeCountAnalysis, which fuses with other
// analyses in one traversal.
func LocalEdgeCounts[VM, EM any](g *graph.DODGr[VM, EM], opts Options) (map[EdgeKey]uint64, Result) {
	var counts map[EdgeKey]uint64
	res := mustResult(Run(g, opts, nil, EdgeCountAnalysis[VM, EM]().Bind(&counts)))
	return counts, res
}
