package core

import (
	"tripoll/internal/container"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// EdgeKey canonically names an undirected edge (smaller endpoint first).
type EdgeKey = serialize.Pair[uint64, uint64]

// CanonEdge returns the canonical key for {u, v}.
func CanonEdge(u, v uint64) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey{First: u, Second: v}
}

// LocalEdgeCounts computes per-edge triangle participation counts — the
// quantity truss decomposition consumes (§5.3: "distributed versions of
// computing truss decompositions, where counts of triangles are desired at
// edges"). The returned map is the gathered global result keyed by
// canonical edge.
func LocalEdgeCounts[VM, EM any](g *graph.DODGr[VM, EM], opts Options) (map[EdgeKey]uint64, Result) {
	w := g.World()
	codec := serialize.PairCodec(serialize.Uint64Codec(), serialize.Uint64Codec())
	counter := container.NewCounter[EdgeKey](w, codec, container.CounterOptions{})
	s := NewSurvey(g, opts, func(r *ygm.Rank, t *Triangle[VM, EM]) {
		counter.Inc(r, CanonEdge(t.P, t.Q))
		counter.Inc(r, CanonEdge(t.P, t.R))
		counter.Inc(r, CanonEdge(t.Q, t.R))
	})
	res := s.Run()
	var gathered map[EdgeKey]uint64
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			gathered = m
		}
	})
	return gathered, res
}
