package core

import (
	"errors"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// The delta candidate codec: the wire format shared by stream push payloads
// and pull replies. A candidate section is
//
//	uvarint(count)
//	ceil(count/8) bytes   in-delta bitmask, one bit per candidate, LSB first
//	count ×               uvarint(id gap) em vm
//
// where each id gap is the candidate's target id minus the previous
// candidate's (the list is sorted by id, so gaps are small varints; the
// first gap is the absolute id). The bitmask carries the "edge is in the
// current delta" bit the multi-delta dedup rule needs, packed up front so
// the per-candidate loop stays branch-light.
//
// Encoding lives in encodeCandList, decoding in candScan; both are free of
// Stream state so the fuzz harness can drive the exact production code over
// synthetic and adversarial inputs.

// ErrCandidateCount reports a candidate section whose declared count cannot
// fit in the remaining payload — the guard that keeps a corrupt count from
// turning into an unbounded decode loop.
var ErrCandidateCount = errors.New("core: candidate count exceeds remaining payload")

// encodeCandList appends the candidate section for adj's keep indices.
// trav/epoch/cutoff/timeOf parameterize the in-delta test (see
// Stream.inDelta); timeOf is only consulted for expiry traversals.
func encodeCandList[VM, EM any](e *serialize.Encoder, em serialize.Codec[EM], vm serialize.Codec[VM],
	adj []graph.StreamEntry[VM, EM], keep []int32,
	trav travKind, epoch uint32, cutoff uint64, timeOf func(EM) uint64) {
	inDelta := func(c *graph.StreamEntry[VM, EM]) bool {
		if trav == travInsert {
			return c.Epoch == epoch
		}
		return timeOf(c.EMeta) < cutoff
	}
	e.PutUvarint(uint64(len(keep)))
	var mask uint8
	bits := 0
	for _, j := range keep {
		if inDelta(&adj[j]) {
			mask |= 1 << bits
		}
		bits++
		if bits == 8 {
			e.PutUint8(mask)
			mask, bits = 0, 0
		}
	}
	if bits > 0 {
		e.PutUint8(mask)
	}
	prev := uint64(0)
	for _, j := range keep {
		c := &adj[j]
		e.PutUvarint(c.Target - prev)
		prev = c.Target
		em.Encode(e, c.EMeta)
		vm.Encode(e, c.TMeta)
	}
}

// candScan iterates a candidate section in place: open reads the header,
// each next decodes one candidate into the exported cursor fields. Malformed
// input never panics — the scan stops and err holds the first failure
// (ErrCandidateCount for an impossible count, the decoder's truncation error
// otherwise). Callers on the trusted transport path treat err as a fatal
// invariant violation; the fuzz harness treats it as a correct rejection.
type candScan[VM, EM any] struct {
	d    *serialize.Decoder
	em   serialize.Codec[EM]
	vm   serialize.Codec[VM]
	mask []byte
	n    int
	i    int
	err  error

	id    uint64 // absolute target id (gaps accumulated)
	fresh bool   // the in-delta bit
	emv   EM
	tm    VM
}

func (c *candScan[VM, EM]) open(d *serialize.Decoder, em serialize.Codec[EM], vm serialize.Codec[VM]) bool {
	c.d, c.em, c.vm = d, em, vm
	c.i, c.n, c.id, c.err = 0, 0, 0, nil
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		c.err = err
		return false
	}
	// Every candidate costs at least its one-byte id gap, so a count beyond
	// the remaining bytes is corrupt regardless of the metadata codecs —
	// and (count+7)/8 below must not be computed from an overflowing int.
	if n > uint64(d.Remaining()) {
		c.err = ErrCandidateCount
		return false
	}
	c.n = int(n)
	c.mask = d.Raw((c.n + 7) / 8)
	if err := d.Err(); err != nil {
		c.err = err
		return false
	}
	return true
}

// next advances to the next candidate; false at the end of the section or
// on the first malformed field (distinguished by err).
func (c *candScan[VM, EM]) next() bool {
	if c.i >= c.n || c.err != nil {
		return false
	}
	c.id += c.d.Uvarint()
	c.fresh = c.mask[c.i>>3]>>(c.i&7)&1 == 1
	c.emv = c.em.Decode(c.d)
	c.tm = c.vm.Decode(c.d)
	if err := c.d.Err(); err != nil {
		c.err = err
		return false
	}
	c.i++
	return true
}
