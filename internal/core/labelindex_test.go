package core

import (
	"math/rand"
	"testing"

	"tripoll/internal/baseline"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// buildLabeled builds a graph with vertex label = id % 3 (a small label
// alphabet, as in labeled pattern matching).
func buildLabeled(t testing.TB, nranks int, edges [][2]uint64) (*ygm.World, *graph.DODGr[uint64, serialize.Unit]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[uint64, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		vset := map[uint64]bool{}
		for i, e := range edges {
			vset[e[0]] = true
			vset[e[1]] = true
			if i%r.Size() == r.ID() {
				b.AddEdge(r, e[0], e[1], serialize.Unit{})
			}
		}
		for v := range vset {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, v%3)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

func TestLabelIndexSmall(t *testing.T) {
	// Bowtie: triangles (0,1,2) and (2,3,4); labels are id%3.
	w, g := buildLabeled(t, 2, bowtie)
	defer w.Close()
	ix, res := BuildLabelIndex(g, Options{}, serialize.Uint64Codec())
	if res.Triangles != 2 {
		t.Fatalf("triangles = %d", res.Triangles)
	}
	// Edge (0,1) closes with vertex 2 (label 2).
	if ix.Query(0, 1, 2) != 1 || ix.Query(1, 0, 2) != 1 {
		t.Errorf("Query(0,1,label2) = %d", ix.Query(0, 1, 2))
	}
	if ix.Query(0, 1, 0) != 0 {
		t.Error("nonexistent label bucket should be 0")
	}
	// Edge (2,3) closes with vertex 4 (label 1).
	if ix.Query(2, 3, 1) != 1 {
		t.Errorf("Query(2,3,label1) = %d", ix.Query(2, 3, 1))
	}
	// Total index mass = 3 entries per triangle.
	var total uint64
	for _, c := range ix {
		total += c
	}
	if total != 3*res.Triangles {
		t.Errorf("index mass = %d, want %d", total, 3*res.Triangles)
	}
}

func TestLabelIndexMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	edges := make([][2]uint64, 400)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(40)), uint64(rng.Intn(40))}
	}
	want := map[LabelIndexKey[uint64]]uint64{}
	for _, tri := range baseline.SerialTriangles(edges) {
		want[LabelIndexKey[uint64]{Edge: CanonEdge(tri[0], tri[1]), Label: tri[2] % 3}]++
		want[LabelIndexKey[uint64]{Edge: CanonEdge(tri[0], tri[2]), Label: tri[1] % 3}]++
		want[LabelIndexKey[uint64]{Edge: CanonEdge(tri[1], tri[2]), Label: tri[0] % 3}]++
	}
	for _, mode := range []Mode{PushOnly, PushPull} {
		w, g := buildLabeled(t, 3, edges)
		ix, _ := BuildLabelIndex(g, Options{Mode: mode}, serialize.Uint64Codec())
		if len(ix) != len(want) {
			t.Fatalf("mode %v: %d buckets, want %d", mode, len(ix), len(want))
		}
		for k, c := range want {
			if ix[k] != c {
				t.Errorf("mode %v: bucket %+v = %d, want %d", mode, k, ix[k], c)
			}
		}
		w.Close()
	}
}

func TestLabelIndexStringLabels(t *testing.T) {
	// String labels exercise variable-length keys in the counting set.
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	b := graph.NewBuilder(w, serialize.StringCodec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[string, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			for _, e := range k4 {
				b.AddEdge(r, e[0], e[1], serialize.Unit{})
			}
			labels := []string{"buyer", "seller", "buyer", "moderator"}
			for v, l := range labels {
				b.SetVertexMeta(r, uint64(v), l)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	ix, res := BuildLabelIndex(g, Options{}, serialize.StringCodec())
	if res.Triangles != 4 {
		t.Fatalf("triangles = %d", res.Triangles)
	}
	// Edge (0,2) (buyer-buyer) participates in triangles with 1 (seller)
	// and 3 (moderator).
	if ix.Query(0, 2, "seller") != 1 || ix.Query(0, 2, "moderator") != 1 {
		t.Errorf("string-label index: %v", ix)
	}
}
