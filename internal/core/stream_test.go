package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// The streaming equivalence property: after every ingested batch and every
// window advance — including batches that complete whole triangles at
// once, duplicate re-insertions, expiries that destroy triangles, and
// epoch-rebuild fallbacks — every fused analysis result is identical to a
// from-scratch Run on the equivalent snapshot (the live edge set), across
// PushOnly/PushPull × degree/degeneracy orderings.

type livePair struct{ lo, hi uint64 }

func canonPair(u, v uint64) livePair {
	if u < v {
		return livePair{u, v}
	}
	return livePair{v, u}
}

func minMerge(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// applyLive folds a batch into the tracked live edge set with the same
// pre-merge semantics the stream uses.
func applyLive(live map[livePair]uint64, batch []graph.Edge[uint64]) {
	for _, e := range batch {
		if e.U == e.V {
			continue
		}
		k := canonPair(e.U, e.V)
		if old, ok := live[k]; ok {
			live[k] = minMerge(old, e.Meta)
		} else {
			live[k] = e.Meta
		}
	}
}

// buildLive constructs the equivalent snapshot of the tracked live set on
// the stream's world.
func buildLive(w *ygm.World, live map[livePair]uint64, ord graph.Ordering) *graph.DODGr[serialize.Unit, uint64] {
	keys := make([]livePair, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	// Deterministic order (map iteration is not).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keyLess(edgeKey(keys[j]), edgeKey(keys[j-1])); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{Ordering: ord, MergeEdgeMeta: minMerge})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(keys); i += r.Size() {
			b.AddEdge(r, keys[i].lo, keys[i].hi, live[keys[i]])
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return g
}

type streamOutputs struct {
	count uint64
	verts map[uint64]uint64
	joint *stats.Joint2D
}

func openTestStream(t *testing.T, g *graph.DODGr[serialize.Unit, uint64], mode Mode, plan *Plan[uint64]) (*Stream[serialize.Unit, uint64], *streamOutputs) {
	t.Helper()
	out := &streamOutputs{}
	s, err := OpenStream(g, StreamOptions[uint64]{Survey: Options{Mode: mode}, MergeEdgeMeta: minMerge}, plan,
		StreamCountAnalysis[serialize.Unit, uint64]().Bind(&out.count),
		StreamVertexCountAnalysis[serialize.Unit, uint64]().Bind(&out.verts),
		StreamClosureTimeAnalysis[serialize.Unit]().Bind(&out.joint),
	)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	return s, out
}

// checkEquiv snapshots the stream and compares every analysis against a
// from-scratch fused Run on the equivalent snapshot.
func checkEquiv(t *testing.T, label string, w *ygm.World, s *Stream[serialize.Unit, uint64], out *streamOutputs, live map[livePair]uint64, ord graph.Ordering, mode Mode, plan *Plan[uint64]) {
	t.Helper()
	s.Snapshot()
	fresh := buildLive(w, live, ord)
	var f streamOutputs
	res, err := Run(fresh, Options{Mode: mode}, plan,
		StreamCountAnalysis[serialize.Unit, uint64]().Analysis.Bind(&f.count),
		StreamVertexCountAnalysis[serialize.Unit, uint64]().Analysis.Bind(&f.verts),
		StreamClosureTimeAnalysis[serialize.Unit]().Analysis.Bind(&f.joint),
	)
	if err != nil {
		t.Fatalf("%s: fresh run: %v", label, err)
	}
	if s.Triangles() != res.Triangles {
		t.Errorf("%s: stream net count %d != fresh %d", label, s.Triangles(), res.Triangles)
	}
	if out.count != f.count {
		t.Errorf("%s: count analysis %d != fresh %d", label, out.count, f.count)
	}
	if !reflect.DeepEqual(out.verts, f.verts) {
		t.Errorf("%s: vertexcounts diverge:\n stream %v\n fresh  %v", label, out.verts, f.verts)
	}
	if !reflect.DeepEqual(out.joint, f.joint) {
		t.Errorf("%s: closure grids diverge (stream total %d, fresh %d)", label, out.joint.Total(), f.joint.Total())
	}
}

// TestStreamEquivalenceProperty drives randomized scenarios: a seeded
// stream, batches with new vertices, whole triangles, duplicates, and
// interleaved expiries, verified after every operation. Timestamps are a
// deterministic function of the endpoint pair, so duplicate insertions
// never revise metadata and the incremental path stays exercised (the
// rebuild paths have dedicated tests below).
func TestStreamEquivalenceProperty(t *testing.T) {
	const horizon = 1 << 12
	tf := func(p livePair) uint64 { return (graph.Mix64(p.lo*2654435761 + p.hi)) % horizon }
	for _, mode := range []Mode{PushOnly, PushPull} {
		for _, ord := range []graph.Ordering{graph.OrderDegree, graph.OrderDegeneracy} {
			for _, planned := range []bool{false, true} {
				plan := TemporalPlan()
				if planned {
					plan.CloseWithin(horizon / 4)
				}
				label := fmt.Sprintf("%v/%v/planned=%v", mode, ord, planned)
				rng := rand.New(rand.NewSource(int64(7 + len(label))))
				nv := uint64(24)
				edge := func() graph.Edge[uint64] {
					u, v := rng.Uint64()%nv, rng.Uint64()%nv
					p := canonPair(u, v)
					return graph.Edge[uint64]{U: u, V: v, Meta: tf(p)}
				}

				w := ygm.MustWorld(3, ygm.Options{})
				live := map[livePair]uint64{}

				// Seed graph: an initial edge set.
				var seedBatch []graph.Edge[uint64]
				for i := 0; i < 60; i++ {
					seedBatch = append(seedBatch, edge())
				}
				applyLive(live, seedBatch)
				seedG := buildLive(w, live, ord)
				s, out := openTestStream(t, seedG, mode, plan)
				checkEquiv(t, label+"/seed", w, s, out, live, ord, mode, plan)

				cutoffs := []uint64{horizon / 5, horizon / 2}
				for batchNo := 0; batchNo < 4; batchNo++ {
					var batch []graph.Edge[uint64]
					for i := 0; i < 30; i++ {
						batch = append(batch, edge())
					}
					// Duplicates of already-live edges (same deterministic
					// timestamp: merge keeps the stored value).
					for k := range live {
						batch = append(batch, graph.Edge[uint64]{U: k.lo, V: k.hi, Meta: tf(k)})
						if len(batch) > 34 {
							break
						}
					}
					// A guaranteed whole triangle among fresh vertices, all
					// three edges in one batch.
					base := nv + uint64(batchNo)*3 + 100
					for _, pr := range [][2]uint64{{base, base + 1}, {base + 1, base + 2}, {base, base + 2}} {
						p := canonPair(pr[0], pr[1])
						batch = append(batch, graph.Edge[uint64]{U: pr[0], V: pr[1], Meta: tf(p)})
					}
					res, err := s.Ingest(batch)
					if err != nil {
						t.Fatalf("%s: batch %d: %v", label, batchNo, err)
					}
					if !res.Delta || res.Rebuilt {
						t.Fatalf("%s: batch %d: want incremental delta result, got Delta=%v Rebuilt=%v", label, batchNo, res.Delta, res.Rebuilt)
					}
					applyLive(live, batch)
					checkEquiv(t, fmt.Sprintf("%s/batch%d", label, batchNo), w, s, out, live, ord, mode, plan)

					if batchNo < len(cutoffs) {
						cut := cutoffs[batchNo]
						ares, err := s.Advance(cut)
						if err != nil {
							t.Fatalf("%s: advance %d: %v", label, cut, err)
						}
						if ares.Rebuilt {
							t.Fatalf("%s: advance %d: invertible analyses must not rebuild", label, cut)
						}
						for k, tm := range live {
							if tm < cut {
								delete(live, k)
							}
						}
						checkEquiv(t, fmt.Sprintf("%s/advance%d", label, cut), w, s, out, live, ord, mode, plan)
					}
				}
				w.Close()
			}
		}
	}
}

// TestStreamMetaRevisionRebuilds: an out-of-order duplicate under a
// min-merge revises stored metadata, which must force an epoch rebuild —
// and the rebuilt analyses must still match a fresh run.
func TestStreamMetaRevisionRebuilds(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	plan := TemporalPlan()
	live := map[livePair]uint64{}
	seedG := buildLive(w, live, graph.OrderDegree)
	s, out := openTestStream(t, seedG, PushPull, plan)

	b1 := []graph.Edge[uint64]{{U: 1, V: 2, Meta: 100}, {U: 2, V: 3, Meta: 120}, {U: 1, V: 3, Meta: 140}}
	if res, err := s.Ingest(b1); err != nil || res.Rebuilt {
		t.Fatalf("batch 1: res=%+v err=%v", res, err)
	}
	applyLive(live, b1)
	checkEquiv(t, "pre-revision", w, s, out, live, graph.OrderDegree, PushPull, plan)

	// Late arrival with an *earlier* timestamp: min-merge revises the edge.
	b2 := []graph.Edge[uint64]{{U: 2, V: 1, Meta: 40}, {U: 4, V: 1, Meta: 90}}
	res, err := s.Ingest(b2)
	if err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if !res.Rebuilt {
		t.Fatal("metadata revision must force an epoch rebuild")
	}
	applyLive(live, b2)
	checkEquiv(t, "post-revision", w, s, out, live, graph.OrderDegree, PushPull, plan)
	if s.Stats().Rebuilds != 1 {
		t.Errorf("rebuilds = %d", s.Stats().Rebuilds)
	}
}

// TestStreamNonInvertibleAdvanceRebuilds: an analysis without Unobserve
// forces Advance onto the epoch-rebuild path, which must still match a
// fresh run on the shrunken window.
func TestStreamNonInvertibleAdvanceRebuilds(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	plan := TemporalPlan()
	live := map[livePair]uint64{}
	seedG := buildLive(w, live, graph.OrderDegree)

	var count uint64
	noInverse := StreamAnalysis[serialize.Unit, uint64, uint64]{Analysis: CountAnalysis[serialize.Unit, uint64]()}
	s, err := OpenStream(seedG, StreamOptions[uint64]{MergeEdgeMeta: minMerge}, plan, noInverse.Bind(&count))
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	batch := []graph.Edge[uint64]{
		{U: 1, V: 2, Meta: 10}, {U: 2, V: 3, Meta: 20}, {U: 1, V: 3, Meta: 30},
		{U: 3, V: 4, Meta: 90}, {U: 4, V: 5, Meta: 95}, {U: 3, V: 5, Meta: 99},
	}
	if res, err := s.Ingest(batch); err != nil || res.Rebuilt {
		t.Fatalf("ingest: res=%+v err=%v", res, err) // inserts never need the inverse
	}
	applyLive(live, batch)
	res, err := s.Advance(50)
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	if !res.Rebuilt {
		t.Fatal("non-invertible analysis must rebuild on expiry")
	}
	if res.DeltaEdges != 3 {
		t.Errorf("retired edges = %d, want 3", res.DeltaEdges)
	}
	s.Snapshot()
	if count != 1 || s.Triangles() != 1 {
		t.Errorf("after expiry: count=%d net=%d, want 1", count, s.Triangles())
	}
}

// TestStreamAdvanceNeedsTimestamps: without a Timestamps accessor there is
// nothing to expire by.
func TestStreamAdvanceNeedsTimestamps(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	seedG := buildLive(w, map[livePair]uint64{}, graph.OrderDegree)
	s, err := OpenStream(seedG, StreamOptions[uint64]{}, nil)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := s.Advance(10); err != ErrStreamNoTimestamps {
		t.Fatalf("Advance without timestamps: err = %v", err)
	}
	// With timestamps, the watermark must be monotone.
	s2, err := OpenStream(seedG, StreamOptions[uint64]{}, TemporalPlan())
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := s2.Advance(10); err != nil {
		t.Fatalf("first advance: %v", err)
	}
	if _, err := s2.Advance(5); err == nil {
		t.Fatal("backwards cutoff must be rejected")
	}
}

// TestStreamVertexMetadataPlumbing: triangles identified incrementally
// must carry the same vertex metadata a full traversal presents — the
// TMeta inlining through route/complete/finish and the seed path.
func TestStreamVertexMetadataPlumbing(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	// Seed graph with vertex metadata v*3+1 and one triangle {0,1,2}.
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{})
	var g *graph.DODGr[uint64, uint64]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			b.AddEdge(r, 0, 1, 5)
			b.AddEdge(r, 1, 2, 6)
			b.AddEdge(r, 0, 2, 7)
		}
		for v := uint64(0); v < 3; v++ {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, v*3+1)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	sum := StreamAnalysis[uint64, uint64, uint64]{
		Analysis: Analysis[uint64, uint64, uint64]{
			Name: "vmsum",
			Observe: func(_ *ygm.Rank, acc uint64, tr *Triangle[uint64, uint64]) uint64 {
				if tr.P >= tr.Q || tr.Q >= tr.R {
					t.Errorf("stream triangle not id-ordered: (%d,%d,%d)", tr.P, tr.Q, tr.R)
				}
				// Seeded vertices (0..2) carry v*3+1; stream-born vertices
				// carry the zero value.
				for _, vm := range [][2]uint64{{tr.P, tr.MetaP}, {tr.Q, tr.MetaQ}, {tr.R, tr.MetaR}} {
					want := uint64(0)
					if vm[0] < 3 {
						want = vm[0]*3 + 1
					}
					if vm[1] != want {
						t.Errorf("vertex metadata mismatch on Δ(%d,%d,%d): meta(%d) = %d, want %d",
							tr.P, tr.Q, tr.R, vm[0], vm[1], want)
					}
				}
				return acc + tr.MetaP + tr.MetaQ + tr.MetaR
			},
			Merge: func(a, b uint64) uint64 { return a + b },
		},
		Unobserve: func(_ *ygm.Rank, acc uint64, tr *Triangle[uint64, uint64]) uint64 {
			return acc - (tr.MetaP + tr.MetaQ + tr.MetaR)
		},
	}
	var got uint64
	s, err := OpenStream(g, StreamOptions[uint64]{}, nil, sum.Bind(&got))
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	// New vertices 3 and 4 arrive with zero metadata; the triangle {1,2,3}
	// mixes seeded and fresh vertices.
	if _, err := s.Ingest([]graph.Edge[uint64]{{U: 1, V: 3, Meta: 8}, {U: 2, V: 3, Meta: 9}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	s.Snapshot()
	// Seed Δ{0,1,2}: metas 1+4+7 = 12. New Δ{1,2,3}: 4+7+0 = 11.
	if got != 23 {
		t.Errorf("metadata sum = %d, want 23", got)
	}
}

// TestStreamPushdownPrunes: a δ-window plan must prune delta candidates
// before they are encoded, and the planned stream must agree with the
// planned fresh run (covered by the property test; here we assert the
// counters actually move).
func TestStreamPushdownPrunes(t *testing.T) {
	const horizon = 1 << 10
	tf := func(p livePair) uint64 { return (graph.Mix64(p.lo*31 + p.hi)) % horizon }
	rng := rand.New(rand.NewSource(5))
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	plan := TemporalPlan().CloseWithin(horizon / 16)
	live := map[livePair]uint64{}
	seedG := buildLive(w, live, graph.OrderDegree)
	s, _ := openTestStream(t, seedG, PushOnly, plan)
	var batch []graph.Edge[uint64]
	for i := 0; i < 400; i++ {
		u, v := rng.Uint64()%40, rng.Uint64()%40
		p := canonPair(u, v)
		batch = append(batch, graph.Edge[uint64]{U: u, V: v, Meta: tf(p)})
	}
	res, err := s.Ingest(batch)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if !res.Planned {
		t.Fatal("planned stream result not marked Planned")
	}
	if res.PrunedBatches == 0 && res.PrunedCandidates == 0 {
		t.Errorf("δ-window pruned nothing: %+v", res)
	}
}
