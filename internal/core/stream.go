package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Streaming survey maintenance. A Stream ingests timestamped edge batches
// and keeps a set of fused analyses (StreamAnalysis values) continuously
// correct over the live edge set, without re-surveying the whole graph per
// batch. The key observation is delta locality: a batch changes exactly the
// triangles that contain a changed edge, and the triangles containing edge
// {u, v} are the common neighborhood N(u) ∩ N(v) — so each batch runs a
// *delta-scoped* version of the paper's machinery in which the only wedge
// sources are the changed edges:
//
//   - dry run: for each new (or expiring) edge {lo, hi} the initiator
//     Rank(lo) proposes |N(lo)| to Rank(hi), which grants a pull when
//     |N(hi)| · PullFactor < |N(lo)| — the §4.4 negotiation verbatim, at
//     delta scope (Push-Only skips it, exactly like the full survey);
//   - push: Rank(lo) ships N(lo) to Rank(hi), which merge-path intersects
//     it against N(hi); pull reverses the shipping direction. Plan filters
//     prune candidates before they are encoded and pull replies before
//     they are sent, reusing the PR 2 predicate-pushdown discipline, and
//     the full plan predicate is re-checked before any accumulator sees a
//     triangle;
//   - every identified triangle is dispatched to every attached analysis
//     with a sign: Observe for triangles a batch creates, Unobserve for
//     triangles an expiry destroys — the PR 3 rank-local accumulator
//     discipline, extended from a monoid to a group.
//
// A triangle whose batch changed several of its edges must be counted once,
// not once per changed edge: each candidate carries an "in the current
// delta" bit, and the intersection assigns the triangle to its
// canonically-smallest changed edge (the (min, max) lexicographic order on
// endpoint pairs, identical on every rank with no coordination).
//
// Expiry (Advance) retires every edge with timestamp below a cutoff. For
// analyses that declare Unobserve the destroyed triangles are enumerated
// by the same delta traversal (before tombstoning) and reversed out of the
// accumulators; if any attached analysis is non-invertible — or a
// metadata-revising duplicate merge makes the delta ill-defined — the
// batch falls back to a windowed epoch rebuild: accumulators are reset and
// re-populated by one fused traversal of the materialized live snapshot.
// Both paths leave results byte-identical to a from-scratch Run on the
// equivalent snapshot (property-tested in stream_test.go).
//
// Unlike the immutable DODGr, stream shards store *full* symmetrized
// neighborhoods (each edge at both owners): a delta intersection needs
// whole neighborhoods, not <+-upward halves. Entries are ordered by vertex
// id; analyses therefore see stream triangles with P < Q < R by id, and
// full traversals (seed, rebuilds) are normalized to the same presentation.
//
// Construction, like NewSurvey, registers handlers and must happen outside
// parallel regions; Ingest/Advance/Snapshot are collective and must also
// be called outside parallel regions. Epoch rebuilds register fresh
// handler slots on the world (a Survey and a Builder per rebuild), so
// long-lived streams should prefer invertible analyses and chronological
// input; the ~8 leaked registry slots per rebuild are the price of the
// fallback.

// StreamOptions configures a stream.
type StreamOptions[EM any] struct {
	// Survey selects the delta traversal's algorithm and tuning (the same
	// Options a full survey takes; PullFactor is clamped exactly as there).
	Survey Options
	// MergeEdgeMeta combines metadata when an ingested edge already exists
	// (multigraph reduction, mirroring BuilderOptions.MergeEdgeMeta; the
	// §5.2 Reddit reduction is min-by-timestamp). Commutative and
	// associative; nil keeps the stored metadata. A merge that *revises*
	// the stored value (detected by codec-byte comparison) forces an epoch
	// rebuild — on chronological streams with keep-first semantics it
	// never fires.
	MergeEdgeMeta func(a, b EM) EM
}

// StreamStats are a stream's cumulative counters.
type StreamStats struct {
	Batches          uint64 // Ingest calls
	Advances         uint64 // Advance calls
	Inserted         uint64 // edges structurally created (incl. resurrections)
	Merged           uint64 // duplicate insertions merged into stored edges
	Retired          uint64 // edges tombstoned by expiry
	SelfLoopsDropped uint64
	Rebuilds         uint64 // epoch-rebuild fallbacks
	Triangles        uint64 // net plan-matching triangles in the live window
}

// ErrStreamNoTimestamps is returned by Advance when the stream's plan has
// no Timestamps accessor to read expiry times from.
var ErrStreamNoTimestamps = errors.New("core: stream Advance needs a plan with a Timestamps accessor (use TemporalPlan or Plan.Timestamps)")

type travKind int

const (
	travInsert travKind = iota
	travExpire
)

// deltaEdge is one changed edge as the traversal sees it: a is the
// initiating endpoint (the one whose neighborhood ships, stored on the
// recording rank), b the partner. The dedup identity of the edge is its
// canonical edgeKey, independent of direction.
type deltaEdge struct{ a, b uint64 }

// edgeKey is the canonical (min, max) name of an undirected edge — the
// coordination-free total order the multi-delta dedup rule is built on.
type edgeKey struct{ lo, hi uint64 }

func pairKey(x, y uint64) edgeKey {
	if x < y {
		return edgeKey{x, y}
	}
	return edgeKey{y, x}
}

func keyLess(p, q edgeKey) bool {
	return p.lo < q.lo || (p.lo == q.lo && p.hi < q.hi)
}

type streamPullEntry[VM, EM any] struct {
	id    uint64
	fresh bool
	em    EM
	tmeta VM
}

// Stream maintains fused analyses over a mutating timestamped edge set.
// Open one with OpenStream; see the package comment above for semantics.
type Stream[VM, EM any] struct {
	g       *graph.DODGr[VM, EM]
	w       *ygm.World
	opts    StreamOptions[EM]
	plan    *Plan[EM]
	filters planFilters[EM]
	timeOf  func(EM) uint64
	vm      serialize.Codec[VM]
	em      serialize.Codec[EM]

	analyses []StreamAttached[VM, EM]
	sinks    []StreamSink[VM, EM]
	names    []string

	shards []*graph.StreamShard[VM, EM]
	state  []streamState[VM, EM]

	epoch         uint32
	cutoff        uint64
	hasCutoff     bool
	trav          travKind
	sign          int
	pendingCutoff uint64

	triangles uint64
	stats     StreamStats
	seed      Result

	// Per-batch scratch reused across Ingest/Advance calls (premerge's
	// dedup index and output, Advance's per-rank tombstone counts): a
	// long-lived stream ingests thousands of batches, and remaking these
	// was a measurable slice of per-batch allocations.
	scratchIdx    map[edgeKey]int
	scratchMerged []graph.Edge[EM]
	scratchHalves []uint64

	hRoute, hComplete, hFinish       ygm.HandlerID
	hDirect, hAssign                 ygm.HandlerID
	hPropose, hDecline, hPush, hPull ygm.HandlerID
}

// streamState is one rank's working state for the current batch.
type streamState[VM, EM any] struct {
	pending   []deltaEdge        // created edges awaiting the direction round
	delta     []deltaEdge        // changed edges this rank initiates
	targVol   map[uint64]uint64  // dry run: target vertex → proposed volume
	parked    map[uint64][]int32 // target vertex → delta indices awaiting pull
	declined  map[uint64]bool    // target vertex → owner declined the pull
	grants    map[uint64][]int32 // local target vertex → granted source ranks
	numGrants uint64

	changed bool
	merged  uint64

	triangles   uint64
	wedgeChecks uint64

	prunedBatches uint64
	prunedCands   uint64
	prunedPull    uint64

	scratchTri  Triangle[VM, EM]
	scratchKeep []int32
	scratchPull []streamPullEntry[VM, EM]
	pullBits    idBitset // dense-reply index reused across onPull messages
}

// OpenStream opens a stream over g's world, partitioning and ordering,
// seeded with g's edges and vertex metadata: the attached analyses start
// out holding exactly what a fused Run over g would produce, and every
// Ingest/Advance batch maintains them incrementally from there. A nil or
// empty plan streams every triangle; a non-empty plan restricts the
// analyses to plan-matching triangles with its predicates pushed into the
// delta traversal. Must be called outside parallel regions.
func OpenStream[VM, EM any](g *graph.DODGr[VM, EM], opts StreamOptions[EM], plan *Plan[EM], analyses ...StreamAttached[VM, EM]) (*Stream[VM, EM], error) {
	return openStream(g, opts, plan, nil, analyses)
}

func openStream[VM, EM any](g *graph.DODGr[VM, EM], opts StreamOptions[EM], plan *Plan[EM], sinks []StreamSink[VM, EM], analyses []StreamAttached[VM, EM]) (*Stream[VM, EM], error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	w := g.World()
	if !(opts.Survey.PullFactor > 0) {
		opts.Survey.PullFactor = 1.0 // same clamp as NewSurvey
	}
	s := &Stream[VM, EM]{
		g: g, w: w, opts: opts, plan: plan,
		filters: plan.compile(),
		vm:      g.VertexCodec(), em: g.EdgeCodec(),
		analyses: analyses,
		sinks:    sinks,
		sign:     1,
	}
	if plan != nil {
		s.timeOf = plan.timeOf
	}
	s.names = make([]string, len(analyses))
	for i, a := range analyses {
		if err := a.validateStream(w.Size()); err != nil {
			return nil, err
		}
		s.names[i] = a.AnalysisName()
		a.start(w.Size())
	}
	for _, sk := range sinks {
		sk.SinkOpen(w.Size())
	}
	s.shards = make([]*graph.StreamShard[VM, EM], w.Size())
	for i := range s.shards {
		s.shards[i] = graph.NewStreamShard[VM, EM]()
	}
	s.state = make([]streamState[VM, EM], w.Size())
	s.registerHandlers()
	s.seedFrom(g)
	return s, nil
}

// Seed returns the Result of the fused traversal that initialized the
// analyses from the seed graph.
func (s *Stream[VM, EM]) Seed() Result { return s.seed }

// Triangles returns the net count of (plan-matching) triangles currently
// in the live window.
func (s *Stream[VM, EM]) Triangles() uint64 { return s.triangles }

// Cutoff returns the expiry watermark and whether Advance has ever set
// one. Durable streams persist it in checkpoint manifests so a recovered
// stream resumes with the same monotonicity guard.
func (s *Stream[VM, EM]) Cutoff() (uint64, bool) { return s.cutoff, s.hasCutoff }

// RestoreCutoff reinstates a persisted expiry watermark without retiring
// anything. Recovery only: a checkpoint snapshot already reflects every
// expiry its watermark caused, and any live edges below it are late
// arrivals the next Advance retires — exactly as in the original stream.
// Running Advance instead would retire those late arrivals early and
// diverge from an uninterrupted run.
func (s *Stream[VM, EM]) RestoreCutoff(cutoff uint64) {
	if s.hasCutoff && cutoff < s.cutoff {
		return
	}
	s.cutoff = cutoff
	s.hasCutoff = true
}

// CheckAdvance reports whether Advance(cutoff) would be admitted, without
// applying anything. Durable engines preflight with it before logging the
// advance, so the write-ahead log never holds a record whose replay would
// deterministically fail.
func (s *Stream[VM, EM]) CheckAdvance(cutoff uint64) error {
	if s.timeOf == nil {
		return ErrStreamNoTimestamps
	}
	if s.hasCutoff && cutoff < s.cutoff {
		return fmt.Errorf("core: stream cutoff moved backwards: %d < %d", cutoff, s.cutoff)
	}
	return nil
}

// Stats returns the stream's cumulative counters.
func (s *Stream[VM, EM]) Stats() StreamStats {
	st := s.stats
	st.Triangles = s.triangles
	return st
}

func (s *Stream[VM, EM]) owner(v uint64) int { return s.g.Owner(v) }

// metaCmp returns the revision detector the shard inserts use, or nil
// when no merge is configured — Insert then never revises stored
// metadata, so paying two encodes per duplicate would be dead work.
func (s *Stream[VM, EM]) metaCmp() func(a, b EM) bool {
	if s.opts.MergeEdgeMeta == nil {
		return nil
	}
	return s.metaEq
}

// metaEqPool holds the scratch encoders metaEq compares through. Package
// level because metaEq runs inside handlers on any rank's goroutine, so
// per-Stream scratch would race; a sync.Pool keeps the steady state
// allocation-free either way.
var metaEqPool = sync.Pool{New: func() any { return serialize.NewEncoder(64) }}

// metaEq compares edge metadata through the codec: byte-identical encoding
// is the package's notion of "the merge kept the stored value".
func (s *Stream[VM, EM]) metaEq(a, b EM) bool {
	ea := metaEqPool.Get().(*serialize.Encoder)
	eb := metaEqPool.Get().(*serialize.Encoder)
	ea.Reset()
	eb.Reset()
	s.em.Encode(ea, a)
	s.em.Encode(eb, b)
	eq := bytes.Equal(ea.Bytes(), eb.Bytes())
	metaEqPool.Put(ea)
	metaEqPool.Put(eb)
	return eq
}

func (s *Stream[VM, EM]) registerHandlers() {
	// Ingest routing is a three-hop chain: the batch rank sends (u, v, em)
	// to Rank(u), which inserts u→v (far metadata not yet known) and
	// forwards (em, meta(u)) to Rank(v); Rank(v) inserts v→u and replies
	// with meta(v) to patch Rank(u)'s inlined far metadata. A duplicate
	// whose merge kept the stored value stops after the first hop — the
	// partner owner holds the identical value and would no-op identically;
	// a *revising* merge must still propagate so the shards stay in
	// lockstep (the rebuild it forces reads either half).
	s.hRoute = s.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		u := d.Uvarint()
		v := d.Uvarint()
		em := s.em.Decode(d)
		if d.Err() != nil {
			panic("core: corrupt stream route message: " + d.Err().Error())
		}
		sh := s.shards[r.ID()]
		vi := sh.Ensure(u)
		var zero VM
		created, changed := sh.Insert(vi, v, em, zero, s.epoch, s.opts.MergeEdgeMeta, s.metaCmp())
		st := &s.state[r.ID()]
		if changed {
			st.changed = true
		}
		if !created {
			st.merged++
			if !changed {
				return
			}
		}
		e := r.Begin(s.owner(v), s.hComplete)
		e.PutUvarint(v)
		e.PutUvarint(u)
		s.em.Encode(e, em)
		s.vm.Encode(e, sh.Verts[vi].Meta)
		r.Commit(e)
	})
	s.hComplete = s.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		u := d.Uvarint()
		em := s.em.Decode(d)
		metaU := s.vm.Decode(d)
		if d.Err() != nil {
			panic("core: corrupt stream complete message: " + d.Err().Error())
		}
		sh := s.shards[r.ID()]
		vi := sh.Ensure(v)
		created, changed := sh.Insert(vi, u, em, metaU, s.epoch, s.opts.MergeEdgeMeta, s.metaCmp())
		st := &s.state[r.ID()]
		if changed {
			st.changed = true
		}
		if !created {
			return // revising duplicate: merged at both owners, chain ends
		}
		st.pending = append(st.pending, deltaEdge{a: v, b: u})
		e := r.Begin(s.owner(u), s.hFinish)
		e.PutUvarint(u)
		e.PutUvarint(v)
		s.vm.Encode(e, sh.Verts[vi].Meta)
		r.Commit(e)
	})
	s.hFinish = s.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		u := d.Uvarint()
		v := d.Uvarint()
		metaV := s.vm.Decode(d)
		if d.Err() != nil {
			panic("core: corrupt stream finish message: " + d.Err().Error())
		}
		sh := s.shards[r.ID()]
		vi, ok := sh.Index[u]
		if !ok {
			panic("core: stream finish for vertex not stored at its owner")
		}
		sh.Find(vi, v).TMeta = metaV
	})
	// Direction round: once a batch's insertions have settled (degrees are
	// final), each created edge picks its delta initiator toward the
	// lower-degree endpoint — the stream's analog of the DODGr's degree
	// orientation, so the shipped neighborhood is the small one. The pair's
	// recording owner proposes with its degree; the partner either claims
	// the edge (it is smaller) or assigns it back.
	s.hDirect = s.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		u := d.Uvarint()
		v := d.Uvarint()
		degV := d.Uvarint()
		if d.Err() != nil {
			panic("core: corrupt stream direct message: " + d.Err().Error())
		}
		sh := s.shards[r.ID()]
		st := &s.state[r.ID()]
		vi, ok := sh.Index[u]
		if !ok {
			panic("core: stream direct for vertex not stored at its owner")
		}
		degU := uint64(sh.LiveDeg(vi))
		if degU < degV || (degU == degV && u < v) {
			sh.Find(vi, v).Init = true
			st.delta = append(st.delta, deltaEdge{a: u, b: v})
			return
		}
		e := r.Begin(s.owner(v), s.hAssign)
		e.PutUvarint(v)
		e.PutUvarint(u)
		r.Commit(e)
	})
	s.hAssign = s.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		u := d.Uvarint()
		if d.Err() != nil {
			panic("core: corrupt stream assign message: " + d.Err().Error())
		}
		sh := s.shards[r.ID()]
		st := &s.state[r.ID()]
		vi := sh.Index[v]
		sh.Find(vi, u).Init = true
		st.delta = append(st.delta, deltaEdge{a: v, b: u})
	})
	s.hPropose = s.w.RegisterHandler(s.onPropose)
	s.hDecline = s.w.RegisterHandler(s.onDecline)
	s.hPush = s.w.RegisterHandler(s.onPush)
	s.hPull = s.w.RegisterHandler(s.onPull)
}

// seedFrom populates the shards with g's edges (symmetrizing the
// <+-upward lists into full neighborhoods) and initializes the analyses
// with one fused traversal of g.
func (s *Stream[VM, EM]) seedFrom(g *graph.DODGr[VM, EM]) {
	hSeed := s.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		u := d.Uvarint()
		em := s.em.Decode(d)
		tm := s.vm.Decode(d)
		if d.Err() != nil {
			panic("core: corrupt stream seed message: " + d.Err().Error())
		}
		sh := s.shards[r.ID()]
		vi, ok := sh.Index[v]
		if !ok {
			panic("core: stream seed for vertex not stored at its owner")
		}
		sh.Verts[vi].Adj = append(sh.Verts[vi].Adj, graph.StreamEntry[VM, EM]{Target: u, EMeta: em, TMeta: tm})
	})
	s.w.Parallel(func(r *ygm.Rank) {
		sh := s.shards[r.ID()]
		verts := g.LocalVertices(r)
		for i := range verts {
			sh.EnsureMeta(verts[i].ID, verts[i].Meta)
		}
		ygm.Rendezvous(r) // every record exists before reverse halves fly
		for i := range verts {
			v := &verts[i]
			vi := sh.Index[v.ID]
			for j := range v.Adj {
				o := &v.Adj[j]
				// The forward half inherits the DODGr's <+ orientation as
				// the delta-initiator mark: under the degree order the
				// <+-smaller endpoint is the low-degree side, exactly the
				// direction the ingest chain would choose.
				sh.Verts[vi].Adj = append(sh.Verts[vi].Adj, graph.StreamEntry[VM, EM]{Target: o.Target, EMeta: o.EMeta, TMeta: o.TMeta, Init: true})
				for _, sk := range s.sinks {
					sk.SinkSeedEdge(r, v.ID, o.Target, o.EMeta)
				}
				e := r.Begin(s.owner(o.Target), hSeed)
				e.PutUvarint(o.Target)
				e.PutUvarint(v.ID)
				s.em.Encode(e, o.EMeta)
				s.vm.Encode(e, v.Meta)
				r.Commit(e)
			}
		}
		r.Barrier() // all seeds delivered before sealing
		sh.Seal()
	})
	// Initial observe: one fused traversal of the seed graph, normalized to
	// the stream's id-ordered triangle presentation.
	sv, err := NewPlannedSurvey(g, s.opts.Survey, s.plan, s.fullObserveCallback())
	if err != nil {
		// plan was validated by OpenStream; unreachable
		panic("core: stream seed survey: " + err.Error())
	}
	s.seed = sv.Run()
	s.triangles = s.seed.Triangles
	s.sinkCommit()
}

// fullObserveCallback dispatches full-traversal triangles (seed and epoch
// rebuilds) to every analysis with sign +1, re-sorted into the stream's
// id-ordered presentation.
func (s *Stream[VM, EM]) fullObserveCallback() Callback[VM, EM] {
	if len(s.analyses) == 0 && len(s.sinks) == 0 {
		return nil
	}
	return func(r *ygm.Rank, t *Triangle[VM, EM]) {
		u := &s.state[r.ID()].scratchTri
		fillIDSorted(u, t.P, t.MetaP, t.Q, t.MetaQ, t.R, t.MetaR, t.MetaPQ, t.MetaPR, t.MetaQR)
		for _, a := range s.analyses {
			a.observeSigned(r, u, 1)
		}
		for _, sk := range s.sinks {
			sk.SinkTriangle(r, u, 1)
		}
	}
}

// dispatch hands one delta triangle {u, v, w} (any vertex order; emXY is
// the metadata of edge {x, y}) to every analysis with the batch's sign.
func (s *Stream[VM, EM]) dispatch(r *ygm.Rank, u uint64, mu VM, v uint64, mv VM, w uint64, mw VM, emUV, emUW, emVW EM) {
	t := &s.state[r.ID()].scratchTri
	fillIDSorted(t, u, mu, v, mv, w, mw, emUV, emUW, emVW)
	for _, a := range s.analyses {
		a.observeSigned(r, t, s.sign)
	}
	for _, sk := range s.sinks {
		sk.SinkTriangle(r, t, s.sign)
	}
}

// fillIDSorted fills t with the triangle's vertices sorted ascending by id
// (the stream presentation), permuting vertex and edge metadata in step.
// ems convention: ems[0] = meta(pair 0,1), ems[1] = meta(pair 0,2),
// ems[2] = meta(pair 1,2).
func fillIDSorted[VM, EM any](t *Triangle[VM, EM], u uint64, mu VM, v uint64, mv VM, w uint64, mw VM, emUV, emUW, emVW EM) {
	ids := [3]uint64{u, v, w}
	vms := [3]VM{mu, mv, mw}
	ems := [3]EM{emUV, emUW, emVW}
	swap01 := func() {
		ids[0], ids[1] = ids[1], ids[0]
		vms[0], vms[1] = vms[1], vms[0]
		ems[1], ems[2] = ems[2], ems[1]
	}
	swap12 := func() {
		ids[1], ids[2] = ids[2], ids[1]
		vms[1], vms[2] = vms[2], vms[1]
		ems[0], ems[1] = ems[1], ems[0]
	}
	if ids[0] > ids[1] {
		swap01()
	}
	if ids[1] > ids[2] {
		swap12()
	}
	if ids[0] > ids[1] {
		swap01()
	}
	t.P, t.Q, t.R = ids[0], ids[1], ids[2]
	t.MetaP, t.MetaQ, t.MetaR = vms[0], vms[1], vms[2]
	t.MetaPQ, t.MetaPR, t.MetaQR = ems[0], ems[1], ems[2]
}

// inDelta reports whether a stored entry's edge belongs to the current
// batch's delta set: inserted this epoch for Ingest batches, expiring
// below the pending cutoff for Advance batches.
func (s *Stream[VM, EM]) inDelta(e *graph.StreamEntry[VM, EM]) bool {
	if s.trav == travInsert {
		return e.Epoch == s.epoch
	}
	return s.timeOf(e.EMeta) < s.pendingCutoff
}

func (s *Stream[VM, EM]) resetBatch(sign int, trav travKind) {
	s.sign = sign
	s.trav = trav
	for i := range s.state {
		st := &s.state[i]
		st.pending = st.pending[:0]
		st.delta = st.delta[:0]
		if st.targVol == nil {
			st.targVol = make(map[uint64]uint64)
			st.parked = make(map[uint64][]int32)
			st.declined = make(map[uint64]bool)
			st.grants = make(map[uint64][]int32)
		} else {
			// Reuse the previous batch's maps: a long-lived stream resets
			// these every batch, and the slices above already recycle.
			clear(st.targVol)
			clear(st.parked)
			clear(st.declined)
			clear(st.grants)
		}
		st.numGrants = 0
		st.changed = false
		st.merged = 0
		st.triangles = 0
		st.wedgeChecks = 0
		st.prunedBatches = 0
		st.prunedCands = 0
		st.prunedPull = 0
	}
}

// phase mirrors Survey.Run's per-phase accounting, accumulating (so the
// Mutate phase can span several regions).
func (s *Stream[VM, EM]) phase(prev *ygm.Stats, dst *PhaseStats, body func(r *ygm.Rank)) {
	start := time.Now()
	s.w.Parallel(body)
	dst.Duration += time.Since(start)
	now := s.w.Stats()
	d := now.Sub(*prev)
	*prev = now
	dst.Bytes += d.BytesSent
	dst.Messages += d.MessagesSent
	dst.Batches += d.BatchesSent
}

// Ingest applies one batch of edge insertions and brings every attached
// analysis up to date: the triangles the batch creates are enumerated by a
// delta traversal scoped to the new edges and observed into the
// accumulators. Duplicates of stored edges are merged with MergeEdgeMeta
// (in-batch duplicates are pre-merged, so owners see one deterministic
// insertion per pair); a merge that revises stored metadata forces an
// epoch rebuild (Result.Rebuilt). Self-loops are dropped and counted.
// Collective; call outside parallel regions.
func (s *Stream[VM, EM]) Ingest(batch []graph.Edge[EM]) (Result, error) {
	s.epoch++
	s.resetBatch(1, travInsert)
	s.w.ResetStats()
	res := s.baseResult()
	t0 := time.Now()
	var prev ygm.Stats

	merged := s.premerge(batch)
	for _, sk := range s.sinks {
		sk.SinkBatch(merged)
	}
	s.phase(&prev, &res.Mutate, func(r *ygm.Rank) {
		for i := r.ID(); i < len(merged); i += r.Size() {
			e := r.Begin(s.owner(merged[i].U), s.hRoute)
			e.PutUvarint(merged[i].U)
			e.PutUvarint(merged[i].V)
			s.em.Encode(e, merged[i].Meta)
			r.Commit(e)
		}
	})
	// Direction round: degrees are settled behind the phase barrier, so
	// every created edge can pick its initiator by final batch degree.
	s.phase(&prev, &res.Mutate, func(r *ygm.Rank) {
		sh := s.shards[r.ID()]
		st := &s.state[r.ID()]
		for _, p := range st.pending {
			e := r.Begin(s.owner(p.b), s.hDirect)
			e.PutUvarint(p.b)
			e.PutUvarint(p.a)
			e.PutUvarint(uint64(sh.LiveDeg(sh.Index[p.a])))
			r.Commit(e)
		}
	})
	changed := false
	for i := range s.state {
		st := &s.state[i]
		res.DeltaEdges += uint64(len(st.delta))
		s.stats.Merged += st.merged
		changed = changed || st.changed
	}
	s.stats.Batches++
	s.stats.Inserted += res.DeltaEdges

	// The rebuild-vs-delta decision must be collective: local shards see
	// only local merges, and in a multi-process world a metadata revision
	// on one process must force every process into the same epoch rebuild
	// (diverging here would mean diverging parallel regions — a protocol
	// breakdown, not just a wrong answer).
	if s.w.Distributed() {
		var local uint64
		if changed {
			local = 1
		}
		var votes uint64
		s.phase(&prev, &res.Mutate, func(r *ygm.Rank) {
			v := ygm.AllReduceSum(r, local)
			if r.ID() == s.w.LeaderID() {
				votes = v
			}
		})
		changed = votes > 0
	}

	if changed {
		if err := s.rebuild(&res, &prev); err != nil {
			return res, err
		}
	} else {
		s.runDelta(&res, &prev)
		s.triangles += res.Triangles
	}
	s.sinkCommit()
	res.Total = time.Since(t0)
	return res, nil
}

// premerge canonicalizes a batch: self-loops dropped (and counted),
// duplicate pairs merged with MergeEdgeMeta, endpoints ordered lo < hi —
// so both owners of a pair receive exactly one deterministic insertion.
// The returned slice is the stream's scratch storage, valid until the next
// Ingest.
func (s *Stream[VM, EM]) premerge(batch []graph.Edge[EM]) []graph.Edge[EM] {
	if s.scratchIdx == nil {
		s.scratchIdx = make(map[edgeKey]int, len(batch))
	} else {
		clear(s.scratchIdx)
	}
	idx := s.scratchIdx
	out := s.scratchMerged[:0]
	for _, e := range batch {
		if e.U == e.V {
			s.stats.SelfLoopsDropped++
			continue
		}
		k := pairKey(e.U, e.V)
		if j, ok := idx[k]; ok {
			s.stats.Merged++
			if s.opts.MergeEdgeMeta != nil {
				out[j].Meta = s.opts.MergeEdgeMeta(out[j].Meta, e.Meta)
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, graph.Edge[EM]{U: k.lo, V: k.hi, Meta: e.Meta})
	}
	s.scratchMerged = out
	return out
}

// Advance retires every live edge whose timestamp is below cutoff and
// reverses the destroyed triangles out of the attached analyses — via the
// delta traversal and Unobserve when every analysis is invertible, via an
// epoch rebuild otherwise. The cutoff is a monotone watermark (edges at
// exactly cutoff survive); late arrivals below it are admitted by Ingest
// and retired at the next Advance. Requires a plan with a Timestamps
// accessor. Collective; call outside parallel regions.
func (s *Stream[VM, EM]) Advance(cutoff uint64) (Result, error) {
	if err := s.CheckAdvance(cutoff); err != nil {
		return Result{}, err
	}
	s.resetBatch(-1, travExpire)
	s.pendingCutoff = cutoff
	s.w.ResetStats()
	res := s.baseResult()
	t0 := time.Now()
	var prev ygm.Stats

	invertible := true
	for _, a := range s.analyses {
		invertible = invertible && a.invertible()
	}
	for _, sk := range s.sinks {
		invertible = invertible && sk.SinkInvertible()
	}
	if invertible {
		// Enumerate destroyed triangles while the expiring edges are still
		// live: the delta set is every live edge below cutoff, recorded at
		// the half that carries the initiator mark (so destroyed triangles
		// ship the low-degree neighborhood, like insertions do).
		s.phase(&prev, &res.Mutate, func(r *ygm.Rank) {
			sh := s.shards[r.ID()]
			st := &s.state[r.ID()]
			for vi := range sh.Verts {
				v := &sh.Verts[vi]
				for j := range v.Adj {
					c := &v.Adj[j]
					if c.Dead || !c.Init {
						continue
					}
					if s.timeOf(c.EMeta) < cutoff {
						st.delta = append(st.delta, deltaEdge{a: v.ID, b: c.Target})
					}
				}
			}
		})
		s.runDelta(&res, &prev)
	}
	if s.scratchHalves == nil {
		s.scratchHalves = make([]uint64, s.w.Size())
	}
	halves := s.scratchHalves
	s.phase(&prev, &res.Mutate, func(r *ygm.Rank) {
		sh := s.shards[r.ID()]
		halves[r.ID()] = uint64(sh.ExpireBefore(s.timeOf, cutoff))
		sh.MaybeCompact()
	})
	// Every edge is tombstoned at both owners, so the retired edge count
	// is half the tombstoned halves.
	var retired uint64
	for _, h := range halves {
		retired += h
	}
	retired /= 2
	res.DeltaEdges = retired
	s.stats.Advances++
	s.stats.Retired += retired
	s.cutoff = cutoff
	s.hasCutoff = true
	for _, sk := range s.sinks {
		sk.SinkExpire(cutoff)
	}

	if !invertible {
		if err := s.rebuild(&res, &prev); err != nil {
			return res, err
		}
	} else {
		s.triangles -= res.Triangles
	}
	s.sinkCommit()
	res.Total = time.Since(t0)
	return res, nil
}

func (s *Stream[VM, EM]) baseResult() Result {
	return Result{
		Mode:     s.opts.Survey.Mode,
		Ordering: s.g.Ordering().String(),
		Planned:  s.filters.active,
		Analyses: s.names,
		Delta:    true,
	}
}

// runDelta executes the delta-scoped dry run/push/pull over the current
// delta lists and folds the per-rank counters into res.
func (s *Stream[VM, EM]) runDelta(res *Result, prev *ygm.Stats) {
	if s.opts.Survey.Mode == PushPull {
		s.phase(prev, &res.DryRun, s.dryRunPhase)
	}
	s.phase(prev, &res.Push, s.pushPhase)
	if s.opts.Survey.Mode == PushPull {
		s.phase(prev, &res.Pull, s.pullPhase)
	}
	for i := range s.state {
		st := &s.state[i]
		res.Triangles += st.triangles
		res.PullsGranted += st.numGrants
		res.WedgeChecks += st.wedgeChecks
		res.PrunedBatches += st.prunedBatches
		res.PrunedCandidates += st.prunedCands
		res.PrunedPullEntries += st.prunedPull
		if st.wedgeChecks > res.MaxRankWedgeChecks {
			res.MaxRankWedgeChecks = st.wedgeChecks
		}
	}
	res.AvgPullsPerRank = float64(res.PullsGranted) / float64(s.w.Size())
	if res.MaxRankWedgeChecks > 0 {
		res.WorkBalance = float64(res.WedgeChecks) / (float64(s.w.Size()) * float64(res.MaxRankWedgeChecks))
	}
}

// candCount counts live candidates of v's adjacency excluding the delta
// partner hi.
func candCount[VM, EM any](adj []graph.StreamEntry[VM, EM], hi uint64) int {
	n := 0
	for i := range adj {
		if !adj[i].Dead && adj[i].Target != hi {
			n++
		}
	}
	return n
}

// dryRunPhase mirrors the survey's §4.4 negotiation at delta scope: for
// every delta edge the initiator proposes its live candidate volume to the
// partner's owner, aggregated per target vertex. Fully plan-pruned delta
// edges propose nothing (their push cost is zero).
func (s *Stream[VM, EM]) dryRunPhase(r *ygm.Rank) {
	sh := s.shards[r.ID()]
	st := &s.state[r.ID()]
	f := &s.filters
	for di := range st.delta {
		de := st.delta[di]
		vi := sh.Index[de.a]
		v := &sh.Verts[vi]
		ent := sh.Find(vi, de.b)
		em := ent.EMeta
		if f.active {
			if !f.edge(em) {
				st.prunedBatches++
				st.prunedCands += uint64(candCount(v.Adj, de.b))
				continue
			}
			alive := false
			for j := range v.Adj {
				c := &v.Adj[j]
				if !c.Dead && c.Target != de.b && f.cand(em, c.EMeta) {
					alive = true
					break
				}
			}
			if !alive {
				st.prunedBatches++
				st.prunedCands += uint64(candCount(v.Adj, de.b))
				continue
			}
		}
		vol := uint64(candCount(v.Adj, de.b))
		if vol == 0 {
			continue // no candidates, no triangles: nothing to negotiate
		}
		st.targVol[de.b] += vol
		st.parked[de.b] = append(st.parked[de.b], int32(di))
	}
	for hi, vol := range st.targVol {
		e := r.Begin(s.owner(hi), s.hPropose)
		e.PutUvarint(hi)
		e.PutUvarint(vol)
		e.PutUvarint(uint64(r.ID()))
		r.Commit(e)
	}
}

// onPropose runs at the delta partner's owner: grant the pull when
// shipping N(hi) once beats receiving the proposed volume. Under an
// edge-level plan filter the pull cost is the filtered live adjacency.
func (s *Stream[VM, EM]) onPropose(r *ygm.Rank, d *serialize.Decoder) {
	hi := d.Uvarint()
	vol := d.Uvarint()
	src := int(d.Uvarint())
	if d.Err() != nil {
		panic("core: corrupt stream propose message: " + d.Err().Error())
	}
	sh := s.shards[r.ID()]
	st := &s.state[r.ID()]
	vi, ok := sh.Index[hi]
	if !ok {
		panic("core: stream propose for vertex not stored at its owner")
	}
	adjLen := sh.LiveDeg(vi)
	if s.filters.hasEdge {
		n := 0
		adj := sh.Verts[vi].Adj
		for j := range adj {
			if !adj[j].Dead && s.filters.edge(adj[j].EMeta) {
				n++
			}
		}
		adjLen = n
	}
	if float64(adjLen)*s.opts.Survey.PullFactor < float64(vol) {
		st.grants[hi] = append(st.grants[hi], int32(src))
		st.numGrants++
		return
	}
	e := r.Begin(src, s.hDecline)
	e.PutUvarint(hi)
	r.Commit(e)
}

func (s *Stream[VM, EM]) onDecline(r *ygm.Rank, d *serialize.Decoder) {
	hi := d.Uvarint()
	if d.Err() != nil {
		panic("core: corrupt stream decline message: " + d.Err().Error())
	}
	s.state[r.ID()].declined[hi] = true
}

// pushPhase ships, for every delta edge not granted a pull, the
// initiator's live neighborhood (minus the partner, minus plan-filtered
// candidates) to the partner's owner for intersection.
func (s *Stream[VM, EM]) pushPhase(r *ygm.Rank) {
	sh := s.shards[r.ID()]
	st := &s.state[r.ID()]
	f := &s.filters
	pushPull := s.opts.Survey.Mode == PushPull
	for di := range st.delta {
		de := st.delta[di]
		vi := sh.Index[de.a]
		v := &sh.Verts[vi]
		ent := sh.Find(vi, de.b)
		em := ent.EMeta
		if f.active && !f.edge(em) {
			// The dry run already accounted this fully-pruned delta edge in
			// push-pull mode; count it here only when no dry run ran.
			if !pushPull {
				st.prunedBatches++
				st.prunedCands += uint64(candCount(v.Adj, de.b))
			}
			continue
		}
		if pushPull && !st.declined[de.b] {
			continue // granted pull (or nothing proposed): pull covers it
		}
		// One predicate pass, then encode from the recorded survivors (the
		// same impure-predicate discipline as the full survey). A candidate
		// that is itself in the delta with a smaller canonical key is
		// pre-filtered here: the dedup rule assigns any shared triangle to
		// that edge, so shipping it could only waste bytes — for a batch
		// whose edges are all new (a fresh stream's first batch) this skips
		// about half of every neighborhood.
		eKey := pairKey(de.a, de.b)
		keep := st.scratchKeep[:0]
		cands := 0
		for j := range v.Adj {
			c := &v.Adj[j]
			if c.Dead || c.Target == de.b {
				continue
			}
			if s.inDelta(c) && keyLess(pairKey(de.a, c.Target), eKey) {
				continue
			}
			cands++
			if f.active && !f.cand(em, c.EMeta) {
				continue
			}
			keep = append(keep, int32(j))
		}
		st.scratchKeep = keep
		if len(keep) == 0 {
			if f.active && !pushPull && cands > 0 {
				st.prunedBatches++
				st.prunedCands += uint64(cands)
			}
			continue
		}
		if f.active {
			st.prunedCands += uint64(cands - len(keep))
		}
		e := r.Begin(s.owner(de.b), s.hPush)
		e.PutUvarint(de.a)
		s.vm.Encode(e, v.Meta)
		e.PutUvarint(de.b)
		s.em.Encode(e, em)
		s.encodeCandidates(e, v.Adj, keep)
		r.Commit(e)
	}
}

// encodeCandidates writes a neighborhood slice in the delta candidate wire
// format (see candcodec.go), parameterizing the shared codec with this
// batch's in-delta test.
func (s *Stream[VM, EM]) encodeCandidates(e *serialize.Encoder, adj []graph.StreamEntry[VM, EM], keep []int32) {
	encodeCandList(e, s.em, s.vm, adj, keep, s.trav, s.epoch, s.pendingCutoff, s.timeOf)
}

// onPush intersects a pushed delta neighborhood against the local live
// adjacency of the partner vertex. Each match is a triangle the batch
// created (or, on expiry, destroys); the dedup rule assigns triangles with
// several delta edges to the canonically smallest one.
func (s *Stream[VM, EM]) onPush(r *ygm.Rank, d *serialize.Decoder) {
	a := d.Uvarint() // initiating endpoint (its neighborhood follows)
	metaA := s.vm.Decode(d)
	b := d.Uvarint() // partner: a local vertex of this rank
	emAB := s.em.Decode(d)
	if d.Err() != nil {
		panic("core: corrupt stream push header: " + d.Err().Error())
	}
	sh := s.shards[r.ID()]
	st := &s.state[r.ID()]
	vi, ok := sh.Index[b]
	if !ok {
		panic("core: stream push for vertex not stored at its owner")
	}
	v := &sh.Verts[vi]
	adj := v.Adj
	eKey := pairKey(a, b)
	var cs candScan[VM, EM]
	if !cs.open(d, s.em, s.vm) {
		panic("core: corrupt stream push candidates: " + cs.err.Error())
	}
	k := 0
	for cs.next() {
		w := cs.id
		k = gallopStreamID(adj, k, w)
		st.wedgeChecks++
		if k < len(adj) && adj[k].Target == w && !adj[k].Dead {
			c := &adj[k]
			if cs.fresh && keyLess(pairKey(a, w), eKey) {
				continue // counted at delta edge {a, w}
			}
			if s.inDelta(c) && keyLess(pairKey(b, w), eKey) {
				continue // counted at delta edge {b, w}
			}
			if s.filters.active && !s.filters.tri(emAB, cs.emv, c.EMeta) {
				continue
			}
			st.triangles++
			s.dispatch(r, a, metaA, b, v.Meta, w, cs.tm, emAB, cs.emv, c.EMeta)
		}
	}
	if cs.err != nil {
		panic("core: corrupt stream push candidate: " + cs.err.Error())
	}
}

// pullPhase ships each granted live neighborhood — once per granting
// (vertex, source rank) pair, plan-filtered like the survey's — back to
// the initiating rank, which completes every parked delta edge.
func (s *Stream[VM, EM]) pullPhase(r *ygm.Rank) {
	sh := s.shards[r.ID()]
	st := &s.state[r.ID()]
	f := &s.filters
	for hi, srcs := range st.grants {
		vi := sh.Index[hi]
		v := &sh.Verts[vi]
		keep := st.scratchKeep[:0]
		total := 0
		for j := range v.Adj {
			c := &v.Adj[j]
			if c.Dead {
				continue
			}
			total++
			if f.hasEdge && !f.edge(c.EMeta) {
				continue
			}
			keep = append(keep, int32(j))
		}
		st.scratchKeep = keep
		if f.hasEdge {
			st.prunedPull += uint64((total - len(keep)) * len(srcs))
		}
		if len(keep) == 0 {
			continue
		}
		for _, src := range srcs {
			e := r.Begin(int(src), s.hPull)
			e.PutUvarint(hi)
			s.vm.Encode(e, v.Meta)
			s.encodeCandidates(e, v.Adj, keep)
			r.Commit(e)
		}
	}
}

// onPull completes, back at the initiating rank, every parked delta edge
// targeting the pulled vertex: the mirror intersection of onPush. One
// decoded reply is intersected against *many* parked neighborhoods, so a
// dense reply is indexed once into the rank's reusable idBitset (O(1)
// membership + list index per candidate); sparse replies gallop like the
// push side.
func (s *Stream[VM, EM]) onPull(r *ygm.Rank, d *serialize.Decoder) {
	hi := d.Uvarint()
	metaHi := s.vm.Decode(d)
	if d.Err() != nil {
		panic("core: corrupt stream pull header: " + d.Err().Error())
	}
	sh := s.shards[r.ID()]
	st := &s.state[r.ID()]
	var cs candScan[VM, EM]
	if !cs.open(d, s.em, s.vm) {
		panic("core: corrupt stream pull candidates: " + cs.err.Error())
	}
	pulled := st.scratchPull[:0]
	for cs.next() {
		pulled = append(pulled, streamPullEntry[VM, EM]{id: cs.id, fresh: cs.fresh, em: cs.emv, tmeta: cs.tm})
	}
	if cs.err != nil {
		panic("core: corrupt stream pull entry: " + cs.err.Error())
	}
	st.scratchPull = pulled

	dense := buildPullBitset(&st.pullBits, pulled)
	f := &s.filters
	for _, di := range st.parked[hi] {
		de := st.delta[di]
		vi := sh.Index[de.a]
		v := &sh.Verts[vi]
		ent := sh.Find(vi, de.b)
		emAB := ent.EMeta
		eKey := pairKey(de.a, de.b)
		k := 0
		for j := range v.Adj {
			c := &v.Adj[j]
			if c.Dead || c.Target == de.b {
				continue
			}
			if f.active && !f.cand(emAB, c.EMeta) {
				st.prunedCands++
				continue
			}
			w := c.Target
			st.wedgeChecks++
			var hit bool
			if dense {
				k, hit = st.pullBits.lookup(w)
			} else {
				k = gallopStreamPullID(pulled, k, w)
				hit = k < len(pulled) && pulled[k].id == w
			}
			if hit {
				p := &pulled[k]
				if s.inDelta(c) && keyLess(pairKey(de.a, w), eKey) {
					continue
				}
				if p.fresh && keyLess(pairKey(hi, w), eKey) {
					continue
				}
				if f.active && !f.tri(emAB, c.EMeta, p.em) {
					continue
				}
				st.triangles++
				s.dispatch(r, de.a, v.Meta, hi, metaHi, w, c.TMeta, emAB, c.EMeta, p.em)
			}
		}
	}
}

// Materialize builds an immutable DODGr snapshot of the live edge set,
// with the seed graph's partitioning and ordering strategy — the rebuild
// vehicle, also useful for running arbitrary full surveys against the
// current window. Collective; call outside parallel regions.
func (s *Stream[VM, EM]) Materialize() *graph.DODGr[VM, EM] {
	b := graph.NewBuilder(s.w, s.vm, s.em, graph.BuilderOptions[EM]{
		Partitioner:   s.g.Partitioner(),
		Ordering:      s.g.Ordering(),
		MergeEdgeMeta: s.opts.MergeEdgeMeta,
	})
	var g2 *graph.DODGr[VM, EM]
	s.w.Parallel(func(r *ygm.Rank) {
		sh := s.shards[r.ID()]
		for vi := range sh.Verts {
			v := &sh.Verts[vi]
			b.SetVertexMeta(r, v.ID, v.Meta)
			for j := range v.Adj {
				c := &v.Adj[j]
				if c.Dead || v.ID >= c.Target {
					continue
				}
				b.AddEdge(r, v.ID, c.Target, c.EMeta)
			}
		}
		gg := b.Build(r)
		// Gate on the local leader, not rank 0: in a multi-process world
		// every process must come away with its own snapshot (rank 0 only
		// exists in the driver).
		if r.ID() == s.w.LeaderID() {
			g2 = gg
		}
	})
	return g2
}

// rebuild is the windowed epoch rebuild: accumulators are reset and
// re-populated by one fused traversal of the materialized live snapshot.
// The build traffic lands in res.Mutate; the traversal replaces the
// res phase stats wholesale.
func (s *Stream[VM, EM]) rebuild(res *Result, prev *ygm.Stats) error {
	res.Rebuilt = true
	s.stats.Rebuilds++
	for _, a := range s.analyses {
		a.start(s.w.Size())
	}
	for _, sk := range s.sinks {
		sk.SinkReset()
	}
	t0 := time.Now()
	g2 := s.Materialize()
	now := s.w.Stats()
	d := now.Sub(*prev)
	res.Mutate.Duration += time.Since(t0)
	res.Mutate.Bytes += d.BytesSent
	res.Mutate.Messages += d.MessagesSent
	res.Mutate.Batches += d.BatchesSent
	sv, err := NewPlannedSurvey(g2, s.opts.Survey, s.plan, s.fullObserveCallback())
	if err != nil {
		return err
	}
	r2 := sv.Run() // resets world stats; phases accounted inside
	*prev = s.w.Stats()
	res.DryRun, res.Push, res.Pull = r2.DryRun, r2.Push, r2.Pull
	res.Triangles = r2.Triangles
	res.WedgeChecks = r2.WedgeChecks
	res.MaxRankWedgeChecks = r2.MaxRankWedgeChecks
	res.WorkBalance = r2.WorkBalance
	res.PullsGranted = r2.PullsGranted
	res.AvgPullsPerRank = r2.AvgPullsPerRank
	res.PrunedBatches = r2.PrunedBatches
	res.PrunedCandidates = r2.PrunedCandidates
	res.PrunedPullEntries = r2.PrunedPullEntries
	s.triangles = r2.Triangles
	return nil
}

// Snapshot publishes every attached analysis's current result into its
// bound output: the live per-rank accumulators are cloned, tree-reduced
// and finalized, so the stream keeps maintaining them across subsequent
// batches. Returns the cumulative stream counters. Collective; call
// outside parallel regions.
func (s *Stream[VM, EM]) Snapshot() StreamStats {
	if len(s.analyses) > 0 {
		for _, a := range s.analyses {
			a.prepare()
		}
		s.w.Parallel(func(r *ygm.Rank) {
			for _, a := range s.analyses {
				a.reduceClones(r)
			}
		})
		for _, a := range s.analyses {
			a.finishClones()
		}
	}
	return s.Stats()
}
