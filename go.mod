module tripoll

go 1.24
