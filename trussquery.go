package tripoll

import (
	"tripoll/internal/graph"
	"tripoll/internal/truss"
)

// Temporal truss subsystem (DESIGN.md §15): span-truss analyses as
// first-class query-engine analyses, and a maintained triangle-span index
// that answers them without re-enumerating triangles.
//
// The traversal path: "trussness", "maxtruss" and "spantruss" are
// registered in TemporalQueryRegistry, so any engine (and tripolld's
// /v1/query) serves them. Each fused traversal accumulates span-bucketed
// per-edge triangle support; Finalize peels support into trussness with
// the same single-machine peeling TrussDecomposition uses, so distributed
// and serial answers are byte-identical.
//
// The maintained path: NewTrussIndex builds a StreamSink recording, per
// live edge, the span-bucketed support contributed by every triangle the
// stream enumerates. Attach it at open (OpenStreamSinks, or
// Engine.OpenDurableStream via a sink-aware open) and then to the engine
// with Engine.AttachIndex — repeated truss queries are answered from the
// index, with zero traversals and zero messages:
//
//	ix := tripoll.NewTrussIndex[tripoll.Unit](minTimestamp)
//	s, _ := tripoll.OpenStreamSinks(g, opts, plan,
//	    []tripoll.StreamSink[tripoll.Unit, uint64]{ix})
//	eng.RegisterStream("g", s)
//	eng.AttachIndex("g", ix)

// TrussWindow is a closed timestamp window [From, Until] for truss
// analyses; the zero From / ^uint64(0) Until pair is the whole axis.
type TrussWindow = truss.Window

// WholeTrussWindow returns the unbounded window.
func WholeTrussWindow() TrussWindow { return truss.WholeWindow() }

// Truss analysis results (the "trussness", "maxtruss" and "spantruss"
// query values, JSON-shaped as tripolld serves them).
type (
	// TrussnessResult lists every edge's trussness plus the maximum.
	TrussnessResult = truss.Decomp
	// TrussnessEdge is one edge's trussness.
	TrussnessEdge = truss.EdgeTruss
	// MaxTrussResult is the maximum trussness with per-k truss sizes.
	MaxTrussResult = truss.MaxResult
	// SpanTrussResult lists the maximal k-truss per requested span.
	SpanTrussResult = truss.SpanResult
	// SpanTrussQueryArgs is the JSON argument shape of "spantruss".
	SpanTrussQueryArgs = truss.SpanTrussArgs
)

// TrussIndex is the maintained triangle-span index: a StreamSink (attach
// with OpenStreamSinks) and a QueryIndexServer (attach with
// Engine.AttachIndex). VM is the stream's vertex metadata type; edge
// metadata must be uint64 timestamps.
type TrussIndex[VM any] = truss.Index[VM]

// TrussIndexStats reports a truss index's size and serving counters.
type TrussIndexStats = truss.IndexStats

// NewTrussIndex creates an empty triangle-span index. mergeTimestamp must
// be the same reduction as the stream's StreamOptions.MergeEdgeMeta (nil
// keeps the stored timestamp, mirroring the stream's nil default) — the
// index replays edge events through it to stay bit-identical to the
// stream's shards.
func NewTrussIndex[VM any](mergeTimestamp func(a, b uint64) uint64) *TrussIndex[VM] {
	return truss.NewIndex[VM](truss.IndexOptions{MergeTimestamp: mergeTimestamp})
}

// WindowTrussness surveys g and returns every edge's trussness within the
// window (the "trussness" analysis as a one-shot call).
func WindowTrussness[VM any](g *Graph[VM, uint64], win TrussWindow, opts SurveyOptions) (TrussnessResult, error) {
	var out *truss.Accum
	if _, err := Run(g, opts, NewTemporalPlan().Window(win.From, win.Until),
		truss.TrussnessAnalysis(g, win).Bind(&out)); err != nil {
		return TrussnessResult{}, err
	}
	return out.Outcome().(TrussnessResult), nil
}

// WindowSpanTruss surveys g once and returns the maximal k-truss for each
// requested span (the "spantruss" analysis as a one-shot call).
func WindowSpanTruss[VM any](g *Graph[VM, uint64], k int, spans []TrussWindow, opts SurveyOptions) (SpanTrussResult, error) {
	env := truss.WholeWindow()
	args := truss.SpanTrussArgs{K: k, Spans: spans}
	kk, sp, err := args.Normalize(env)
	if err != nil {
		return SpanTrussResult{}, err
	}
	var out *truss.Accum
	if _, err := Run(g, opts, NewTemporalPlan(),
		truss.SpanTrussAnalysis(g, env, kk, sp).Bind(&out)); err != nil {
		return SpanTrussResult{}, err
	}
	return out.Outcome().(SpanTrussResult), nil
}

// DecodeTrussIndexSnapshot parses a TrussIndex store snapshot (the TPTI1
// codec); corrupt input returns an error wrapping ErrTrussIndexCorrupt,
// never a panic.
func DecodeTrussIndexSnapshot(data []byte) (*graph.TriSpanStore, error) {
	return graph.DecodeTriSpanSnapshot(data)
}

// ErrTrussIndexCorrupt is the base class of truss-index snapshot damage.
var ErrTrussIndexCorrupt = graph.ErrTriSpanCorrupt
