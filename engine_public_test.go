package tripoll_test

import (
	"context"
	"testing"

	"tripoll"
	"tripoll/datagen"
)

// TestPublicQueryEngine exercises the exported engine surface end to end:
// a temporal graph served through NewTemporalQueryEngine must answer a
// coalesced spec batch identically to direct fused Runs.
func TestPublicQueryEngine(t *testing.T) {
	p := datagen.DefaultRedditParams()
	p.Events = 5000
	p.Users = 600
	edges := datagen.RedditLike(p)
	w := tripoll.NewWorld(3)
	defer w.Close()
	g := tripoll.BuildTemporal(w, edges)

	const delta = 100_000
	plan := tripoll.NewTemporalPlan().CloseWithin(delta)
	var wantCount uint64
	var wantJoint *tripoll.Joint2D
	if _, err := tripoll.Run(g, tripoll.SurveyOptions{}, plan,
		tripoll.CountAnalysis[tripoll.Unit, uint64]().Bind(&wantCount),
		tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(&wantJoint)); err != nil {
		t.Fatalf("Run: %v", err)
	}

	eng := tripoll.NewTemporalQueryEngine()
	defer eng.Close()
	if err := eng.Register("reddit", g); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx := context.Background()
	jobs, err := eng.SubmitAll(ctx,
		tripoll.QuerySpec{Analysis: "count", Delta: tripoll.OptUint64(delta)},
		tripoll.QuerySpec{Analysis: "closure", Delta: tripoll.OptUint64(delta)})
	if err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	countRes, err := jobs[0].Wait(ctx)
	if err != nil {
		t.Fatalf("count job: %v", err)
	}
	closureRes, err := jobs[1].Wait(ctx)
	if err != nil {
		t.Fatalf("closure job: %v", err)
	}
	if got := countRes.Value.(uint64); got != wantCount {
		t.Errorf("engine count = %d, want %d", got, wantCount)
	}
	gotJoint := closureRes.Value.(*tripoll.Joint2D)
	if gotJoint.Total() != wantJoint.Total() {
		t.Errorf("engine closure total = %d, want %d", gotJoint.Total(), wantJoint.Total())
	}
	if countRes.CoalescedWith != 2 || closureRes.CoalescedWith != 2 {
		t.Errorf("batch did not coalesce: %d/%d", countRes.CoalescedWith, closureRes.CoalescedWith)
	}
	if st := eng.Stats(); st.Traversals != 1 {
		t.Errorf("Traversals = %d, want 1", st.Traversals)
	}

	// Repeat one spec: cache hit, still one traversal total.
	j, err := eng.Submit(ctx, tripoll.QuerySpec{Analysis: "count", Delta: tripoll.OptUint64(delta)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	qr, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !qr.Cached || qr.Value.(uint64) != wantCount {
		t.Errorf("repeat: cached=%v value=%v, want cached %d", qr.Cached, qr.Value, wantCount)
	}
}
