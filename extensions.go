package tripoll

import (
	"tripoll/internal/algos"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
)

// --- Directed-input support (§4: two-bit original directionality) -------

// Direction is the original-directionality tag of a symmetrized edge.
type Direction = graph.Direction

// Direction values.
const (
	DirNone     = graph.DirNone
	DirForward  = graph.DirForward
	DirBackward = graph.DirBackward
	DirBoth     = graph.DirBoth
)

// DirectedMeta wraps edge metadata with original directionality.
type DirectedMeta[EM any] = graph.Directed[EM]

// ArcMeta, HasArc and the codec/merge helpers for directed ingestion.
func ArcMeta[EM any](u, v uint64, meta EM) DirectedMeta[EM] { return graph.ArcMeta(u, v, meta) }

// HasArc reports whether the original graph contained the arc from → to.
func HasArc[EM any](d DirectedMeta[EM], from, to uint64) bool { return graph.HasArc(d, from, to) }

// DirectedCodec serializes DirectedMeta.
func DirectedCodec[EM any](em Codec[EM]) Codec[DirectedMeta[EM]] { return graph.DirectedCodec(em) }

// MergeDirected builds the multi-edge merge for directed ingestion
// (direction bits OR together; payloads combine via mergeMeta).
func MergeDirected[EM any](mergeMeta func(a, b EM) EM) func(a, b DirectedMeta[EM]) DirectedMeta[EM] {
	return graph.MergeDirected(mergeMeta)
}

// AddArc inserts the directed arc u→v (symmetrized for identification,
// orientation preserved in metadata).
func AddArc[VM, EM any](b *GraphBuilder[VM, DirectedMeta[EM]], r *Rank, u, v uint64, meta EM) {
	graph.AddArc(b, r, u, v, meta)
}

// DirectedCensus classifies triangles of a directed graph as cyclic,
// transitive, reciprocal-containing, or undirected-containing.
type DirectedCensus = core.DirectedCensus

// SurveyDirectedCensus runs the directed-motif census.
//
// Deprecated: use Run with DirectedCensusAnalysis, which fuses with other
// analyses in one traversal.
func SurveyDirectedCensus[VM, EM any](g *Graph[VM, DirectedMeta[EM]], opts SurveyOptions) (DirectedCensus, Result) {
	return core.SurveyDirectedCensus(g, opts)
}

// --- Labeled triangle index ([45]) ---------------------------------------

// LabelIndexKey is one (edge, closing-vertex-label) bucket.
type LabelIndexKey[VM comparable] = core.LabelIndexKey[VM]

// LabelIndex maps (edge, label) buckets to triangle counts.
type LabelIndex[VM comparable] = core.LabelIndex[VM]

// BuildLabelIndex surveys the graph once into a labeled triangle index:
// per-edge counts of triangles closing with each vertex label, the
// pattern-matching acceleration structure of Reza et al. [45]. labelCodec
// is unused now that accumulation is rank-local; the parameter is retained
// for source compatibility.
//
// Deprecated: use Run with LabelIndexAnalysis, which fuses with other
// analyses in one traversal and needs no codec.
func BuildLabelIndex[VM comparable, EM any](g *Graph[VM, EM], opts SurveyOptions, labelCodec serialize.Codec[VM]) (LabelIndex[VM], Result) {
	return core.BuildLabelIndex(g, opts, labelCodec)
}

// --- Distributed graph algorithms on the same substrate ------------------

// AdjGraph is a distributed full-adjacency graph for traversal algorithms
// (the DODGr keeps only <+-oriented out-edges).
type AdjGraph = algos.AdjGraph

// AdjBuilder ingests undirected edges into an AdjGraph.
type AdjBuilder = algos.AdjBuilder

// NewAdjBuilder creates a traversal-graph builder (outside regions).
var NewAdjBuilder = algos.NewAdjBuilder

// BFS, ConnectedComponents and PageRank are distributed algorithms over
// an AdjGraph; construct outside parallel regions, Run anywhere.
type (
	BFS                 = algos.BFS
	ConnectedComponents = algos.ConnectedComponents
	PageRank            = algos.PageRank
)

// Algorithm constructors.
var (
	NewBFS                 = algos.NewBFS
	NewConnectedComponents = algos.NewConnectedComponents
	NewPageRank            = algos.NewPageRank
)

// --- Temporal windows ([40]-style δ-motifs) -------------------------------

// TemporalWindowCount counts triangles whose edge timestamps span at most
// delta.
//
// Deprecated: use Run with TemporalWindowAnalysis (or, to also prune the
// communication, a plan with CloseWithin).
func TemporalWindowCount[VM any](g *Graph[VM, uint64], delta uint64, opts SurveyOptions) (within, total uint64, res Result) {
	return core.TemporalWindowCount(g, delta, opts)
}

// TemporalWindowSweep evaluates several windows in one fused survey pass —
// a single traversal covering every delta, whose phase stats the returned
// Result reports.
//
// Deprecated: use Run with TemporalSweepAnalysis, which additionally fuses
// with other analyses.
func TemporalWindowSweep[VM any](g *Graph[VM, uint64], deltas []uint64, opts SurveyOptions) (map[uint64]uint64, Result) {
	return core.TemporalWindowSweep(g, deltas, opts)
}

// --- Snapshots -------------------------------------------------------------

// SaveGraph persists a built graph to dir; LoadGraph restores it into a
// world of the same size with the same codecs. Construction is the
// expensive step, so build once and survey many.
func SaveGraph[VM, EM any](g *Graph[VM, EM], dir string) error { return g.Save(dir) }

// LoadGraph restores a snapshot written by SaveGraph.
func LoadGraph[VM, EM any](w *World, dir string, vm Codec[VM], em Codec[EM]) (*Graph[VM, EM], error) {
	return graph.Load(w, dir, vm, em)
}

// BuildAdj is a convenience constructor distributing the given undirected
// edges across ranks into an AdjGraph.
func BuildAdj(w *World, edges [][2]uint64) *AdjGraph {
	b := NewAdjBuilder(w)
	var g *AdjGraph
	w.Parallel(func(r *Rank) {
		for i := r.ID(); i < len(edges); i += r.Size() {
			b.AddEdge(r, edges[i][0], edges[i][1])
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return g
}
